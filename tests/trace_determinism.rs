//! The tracing layer's golden-trace contract:
//!
//! 1. Same seed ⇒ byte-identical semantic trace exports (virtual-time
//!    fields only — `include_wall = false`) across repeated runs.
//! 2. The same holds across sweep worker counts: per-run traces are keyed
//!    by run index, so a 2-worker sweep exports the same bytes as serial.
//! 3. Null-sink invariance: enabling tracing must not change what the
//!    experiment computes — the semantic report is byte-identical to an
//!    untraced run's.
//! 4. Attribution acceptance: the traced demo attributes ≥95% of the
//!    report's FTI time to named control-plane conversations, and the
//!    Chrome export parses with a non-empty `traceEvents` array.

use horse::stats::Json;
use horse::trace::{attribute_fti, convergence_timeline};
use horse::{Experiment, TeApproach, TraceOptions};

fn traced_demo(te: TeApproach, seed: u64) -> (horse::ExperimentReport, horse::TraceLog) {
    let (report, trace) = Experiment::demo(4, te, seed)
        .horizon_secs(3.0)
        .trace(TraceOptions::enabled())
        .run_traced();
    (report, trace.expect("tracing was enabled"))
}

#[test]
fn same_seed_gives_byte_identical_trace_exports() {
    let (_, a) = traced_demo(TeApproach::SdnEcmp, 42);
    let (_, b) = traced_demo(TeApproach::SdnEcmp, 42);
    assert!(!a.is_empty());
    assert_eq!(a.to_json(false), b.to_json(false));
    assert_eq!(a.chrome_json(false), b.chrome_json(false));
    // A different seed routes different flows: the traces must differ.
    let (_, c) = traced_demo(TeApproach::SdnEcmp, 43);
    assert_ne!(a.to_json(false), c.to_json(false));
}

#[test]
fn sweep_traces_are_identical_across_worker_counts() {
    use horse::sweep::SweepPlan;
    let plan = SweepPlan::new(42)
        .pods([4])
        .approaches([TeApproach::SdnEcmp, TeApproach::BgpEcmp])
        .horizon_secs(2.0)
        .trace(TraceOptions::enabled());
    let serial = plan.execute(1);
    let parallel = plan.execute(2);
    assert_eq!(serial.runs.len(), parallel.runs.len());
    for (s, p) in serial.runs.iter().zip(&parallel.runs) {
        let st = s.trace.as_ref().expect("serial run traced");
        let pt = p.trace.as_ref().expect("parallel run traced");
        assert!(!st.is_empty(), "{}", s.spec.label());
        assert_eq!(
            st.to_json(false),
            pt.to_json(false),
            "trace diverged across worker counts for {}",
            s.spec.label()
        );
        assert_eq!(st.chrome_json(false), pt.chrome_json(false));
    }
}

#[test]
fn traces_are_byte_identical_at_any_run_thread_count() {
    // The parallel drain records speaker events on worker threads, but
    // every ring is per-speaker and merged in node order — so the export
    // must not move a single byte when the drain shards.
    let run = |threads: usize| {
        let (report, trace) = Experiment::demo(4, TeApproach::BgpEcmp, 42)
            .horizon_secs(3.0)
            .trace(TraceOptions::enabled())
            .run_threads(threads)
            .run_traced();
        (report, trace.expect("tracing was enabled"))
    };
    let (serial_report, serial_trace) = run(1);
    for threads in [2, 4] {
        let (report, trace) = run(threads);
        assert_eq!(
            serial_report.semantic_json(),
            report.semantic_json(),
            "report diverged at run_threads={threads}"
        );
        assert_eq!(
            serial_trace.to_json(false),
            trace.to_json(false),
            "trace diverged at run_threads={threads}"
        );
        assert_eq!(serial_trace.chrome_json(false), trace.chrome_json(false));
        assert!(
            report.pump_parallel_rounds > 0,
            "traced demo must shard rounds at run_threads={threads}"
        );
    }
}

#[test]
fn sweep_traces_survive_nested_run_parallelism() {
    // 2 sweep workers × 4 drain workers: nested scoped pools, same bytes.
    use horse::sweep::SweepPlan;
    let plan = |run_threads: usize| {
        SweepPlan::new(42)
            .pods([4])
            .approaches([TeApproach::BgpEcmp])
            .replicates(2)
            .horizon_secs(2.0)
            .trace(TraceOptions::enabled())
            .run_threads(run_threads)
    };
    let serial = plan(1).execute(1);
    let nested = plan(4).execute(2);
    assert_eq!(serial.runs.len(), nested.runs.len());
    for (s, p) in serial.runs.iter().zip(&nested.runs) {
        assert_eq!(
            s.trace.as_ref().expect("serial run traced").to_json(false),
            p.trace.as_ref().expect("nested run traced").to_json(false),
            "trace diverged under nested pools for {}",
            s.spec.label()
        );
    }
}

#[test]
fn tracing_does_not_change_semantics() {
    for te in [TeApproach::SdnEcmp, TeApproach::BgpEcmp, TeApproach::Hedera] {
        let untraced = Experiment::demo(4, te, 42).horizon_secs(3.0).run();
        let (traced, _) = traced_demo(te, 42);
        assert_eq!(
            untraced.semantic_json(),
            traced.semantic_json(),
            "tracing changed the {} run's semantics",
            te.label()
        );
    }
}

#[test]
fn demo_attributes_fti_time_and_chrome_export_parses() {
    let (report, log) = traced_demo(TeApproach::SdnEcmp, 42);
    assert_eq!(report.trace.events, log.len() as u64);

    let attr = attribute_fti(&log);
    let fti_ns = report.fti_time.as_nanos();
    assert!(fti_ns > 0, "demo never entered FTI?");
    assert!(
        attr.attributed.as_nanos() as f64 >= 0.95 * fti_ns as f64,
        "only {} of {} ns FTI attributed",
        attr.attributed.as_nanos(),
        fti_ns
    );
    assert!(!attr.by_conversation.is_empty());
    assert_eq!(report.trace.fti_attributed_ns, attr.attributed.as_nanos());

    let chrome = Json::parse(&log.chrome_json(true)).expect("chrome export parses");
    let events = chrome
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
}

#[test]
fn bgp_speakers_get_convergence_timelines() {
    let (_, log) = traced_demo(TeApproach::BgpEcmp, 42);
    let timelines = convergence_timeline(&log);
    assert!(!timelines.is_empty(), "no BGP speaker produced events");
    assert!(
        timelines.iter().any(|t| !t.established.is_empty()),
        "no session reached Established"
    );
    assert!(
        timelines.iter().any(|t| t.updates_tx + t.updates_rx > 0),
        "no speaker exchanged UPDATEs"
    );
    for t in &timelines {
        assert!(t.last_activity.is_some());
    }
}

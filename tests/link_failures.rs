//! Failure injection: link failures mid-experiment, BGP withdawals and
//! reconvergence, and the clock's return to FTI mode — the "control plane
//! experimentation" Horse is for.

use horse::net::flow::{FiveTuple, FlowSpec};
use horse::net::topology::Topology;
use horse::net::Ipv4Prefix;
use horse::sim::{ClockMode, SimDuration, SimTime};
use horse::topo::bgp_setups_for;
use horse::topo::fattree::{FatTree, SwitchRole};
use horse::{ControlBuild, Experiment, TeApproach};
use std::net::Ipv4Addr;

const G: f64 = 1e9;

/// h1 - r1 = r2 - h2 with two parallel r1-r2 links.
fn dual_path() -> (Experiment, horse::net::LinkId, horse::net::LinkId) {
    let mut topo = Topology::new();
    let sn1: Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
    let sn2: Ipv4Prefix = "10.0.2.0/24".parse().unwrap();
    let h1 = topo.add_host("h1", Ipv4Addr::new(10, 0, 1, 2), sn1);
    let h2 = topo.add_host("h2", Ipv4Addr::new(10, 0, 2, 2), sn2);
    let r1 = topo.add_router("r1", Ipv4Addr::new(10, 0, 1, 1));
    let r2 = topo.add_router("r2", Ipv4Addr::new(10, 0, 2, 1));
    topo.add_link(h1, r1, G, 1_000);
    let (la, ..) = topo.add_link(r1, r2, G, 5_000);
    let (lb, ..) = topo.add_link(r1, r2, G, 5_000);
    topo.add_link(r2, h2, G, 1_000);
    let setups = bgp_setups_for(
        &topo,
        horse::bgp::session::TimerConfig {
            hold_time: SimDuration::from_secs(30),
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::ZERO,
        },
    );
    let tuple = FiveTuple::udp(
        Ipv4Addr::new(10, 0, 1, 2),
        5000,
        Ipv4Addr::new(10, 0, 2, 2),
        5001,
    );
    let mut e = Experiment::new(topo)
        .flow(SimTime::ZERO, FlowSpec::cbr(h1, h2, tuple, 0.8 * G))
        .horizon_secs(10.0)
        .label("dual-path-failure");
    e.control = ControlBuild::Bgp(setups);
    (e, la, lb)
}

#[test]
fn single_path_failure_blackholes_then_recovers() {
    // Sever the only inter-router link at t=3, repair at t=6.
    let mut topo = Topology::new();
    let sn1: Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
    let sn2: Ipv4Prefix = "10.0.2.0/24".parse().unwrap();
    let h1 = topo.add_host("h1", Ipv4Addr::new(10, 0, 1, 2), sn1);
    let h2 = topo.add_host("h2", Ipv4Addr::new(10, 0, 2, 2), sn2);
    let r1 = topo.add_router("r1", Ipv4Addr::new(10, 0, 1, 1));
    let r2 = topo.add_router("r2", Ipv4Addr::new(10, 0, 2, 1));
    topo.add_link(h1, r1, G, 1_000);
    let (mid, ..) = topo.add_link(r1, r2, G, 5_000);
    topo.add_link(r2, h2, G, 1_000);
    let setups = bgp_setups_for(
        &topo,
        horse::bgp::session::TimerConfig {
            hold_time: SimDuration::from_secs(30),
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::ZERO,
        },
    );
    let tuple = FiveTuple::udp(
        Ipv4Addr::new(10, 0, 1, 2),
        5000,
        Ipv4Addr::new(10, 0, 2, 2),
        5001,
    );
    let mut e = Experiment::new(topo)
        .flow(SimTime::ZERO, FlowSpec::cbr(h1, h2, tuple, 0.8 * G))
        .horizon_secs(10.0)
        .link_down(SimTime::from_secs(3), mid)
        .link_up(SimTime::from_secs(6), mid)
        .label("single-path-failure");
    e.control = ControlBuild::Bgp(setups);
    let report = e.run();

    let series = report.goodput.get("aggregate").unwrap();
    let at = |s: f64| series.value_at(SimTime::from_secs_f64(s)).unwrap_or(-1.0);
    assert!(
        (at(2.0) - 0.8 * G).abs() < 1e6,
        "before failure: {}",
        at(2.0)
    );
    assert!(
        at(4.5) < 1e6,
        "during failure traffic blackholes: {}",
        at(4.5)
    );
    assert!(
        (at(9.0) - 0.8 * G).abs() < 1e6,
        "after repair traffic recovers: {}",
        at(9.0)
    );
    // The failure and the repair both produced control-plane activity
    // after t=3 (session drop/withdraw + re-establishment).
    let late_fti = report
        .transitions
        .iter()
        .filter(|t| t.mode == ClockMode::Fti && t.at >= SimTime::from_secs(3))
        .count();
    assert!(
        late_fti >= 1,
        "failure must re-enter FTI: {:?}",
        report.transitions
    );
}

#[test]
fn parallel_link_failure_fails_over() {
    let (e, la, _lb) = dual_path();
    let e = e.link_down(SimTime::from_secs(3), la);
    let report = e.run();
    let series = report.goodput.get("aggregate").unwrap();
    let at = |s: f64| series.value_at(SimTime::from_secs_f64(s)).unwrap_or(-1.0);
    assert!((at(2.0) - 0.8 * G).abs() < 1e6, "before: {}", at(2.0));
    // ECMP multipath + the surviving session: traffic recovers quickly and
    // is back to full rate well before the end.
    assert!(
        (at(9.0) - 0.8 * G).abs() < 1e6,
        "failover to the parallel link: {}",
        at(9.0)
    );
}

#[test]
fn fattree_agg_core_failure_is_absorbed() {
    // k=4 BGP fat-tree: kill one agg-core link at t=2. ECMP fans traffic
    // over (k/2)^2 = 4 core paths; losing one must not collapse goodput.
    let ft = FatTree::build(4, SwitchRole::BgpRouter, G, 1_000);
    let agg = ft.aggs[0];
    let core = ft.cores[0];
    let (victim, _) = ft.topo.link_between(agg, core).expect("agg-core link");
    let mut e = Experiment::demo(4, TeApproach::BgpEcmp, 42).horizon_secs(8.0);
    e = e.link_down(SimTime::from_secs(2), victim);
    let report = e.run();
    let series = report.goodput.get("aggregate").unwrap();
    let before = series.value_at(SimTime::from_secs_f64(1.9)).unwrap();
    let after = series.value_at(SimTime::from_secs_f64(7.5)).unwrap();
    assert!(before > 8.0 * G, "healthy before: {before}");
    assert!(
        after > before * 0.7,
        "fabric absorbs a single link loss: {before} -> {after}"
    );
    // Withdawals and re-advertisements happened after the failure.
    assert!(
        report
            .transitions
            .iter()
            .any(|t| t.mode == ClockMode::Fti && t.at >= SimTime::from_secs(2)),
        "reconvergence chatter re-enters FTI"
    );
}

#[test]
fn sdn_fabric_recovers_via_port_status() {
    // k=4 SDN ECMP fat-tree: kill an agg-core link at t=2. The adjacent
    // switches send PORT_STATUS, the controller re-places the affected
    // flows over surviving paths, and goodput recovers.
    let ft = FatTree::build(4, SwitchRole::OpenFlow, G, 1_000);
    let agg = ft.aggs[0];
    let core = ft.cores[0];
    let (victim, _) = ft.topo.link_between(agg, core).expect("agg-core link");
    let mut e = Experiment::demo(4, TeApproach::SdnEcmp, 42).horizon_secs(8.0);
    e = e.link_down(SimTime::from_secs(2), victim);
    let report = e.run();
    let series = report.goodput.get("aggregate").unwrap();
    let before = series.value_at(SimTime::from_secs_f64(1.9)).unwrap();
    let after = series.value_at(SimTime::from_secs_f64(7.5)).unwrap();
    assert!(before > 8.0 * G, "healthy before: {before}");
    assert!(
        after >= before * 0.9,
        "controller re-placement restores goodput: {before} -> {after}"
    );
    // PORT_STATUS → FLOW_MODs is control chatter after t=2.
    assert!(
        report
            .transitions
            .iter()
            .any(|t| t.mode == ClockMode::Fti && t.at >= SimTime::from_secs(2)),
        "failure handling re-enters FTI: {:?}",
        report.transitions
    );
}

#[test]
fn link_events_are_deterministic() {
    let run = || {
        let (e, la, _) = dual_path();
        e.link_down(SimTime::from_secs(3), la).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.goodput.get("aggregate"), b.goodput.get("aggregate"));
    assert_eq!(a.control_msgs, b.control_msgs);
}

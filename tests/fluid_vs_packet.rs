//! The fluid model and the packet-level baseline must agree on physics:
//! same flows, same paths → comparable goodput, wildly different cost.

use horse::baseline::{PacketFlow, PacketLevelSim, PacketSimConfig};
use horse::dataplane::hash::{EcmpHasher, HashMode};
use horse::net::flow::FlowSpec;
use horse::net::fluid::FluidNetwork;
use horse::sim::SimTime;
use horse::topo::fattree::{FatTree, SwitchRole};
use horse::topo::pattern::{demo_tuple, TrafficPattern};

const G: f64 = 1e9;

fn demo_paths(
    ft: &FatTree,
    seed: u64,
) -> Vec<(
    horse::net::FiveTuple,
    horse::net::NodeId,
    horse::net::NodeId,
    Vec<horse::net::LinkId>,
)> {
    let pairs = TrafficPattern::RandomPermutation.pairs(&ft.hosts, seed);
    let hasher = EcmpHasher::new(HashMode::FiveTuple, seed);
    pairs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let tuple = demo_tuple(&ft.topo, p.src, p.dst, i as u16);
            let paths = ft.topo.all_shortest_paths(p.src, p.dst);
            let path = paths[hasher.select(&tuple, paths.len())].clone();
            (tuple, p.src, p.dst, path)
        })
        .collect()
}

#[test]
fn goodput_agreement_within_ten_percent() {
    let ft = FatTree::build(4, SwitchRole::OpenFlow, G, 1_000);
    let flows = demo_paths(&ft, 42);
    let horizon = SimTime::from_millis(100);

    let mut fluid = FluidNetwork::new();
    for (tuple, src, dst, path) in &flows {
        fluid
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(*src, *dst, *tuple, G),
                path.clone(),
                &ft.topo,
            )
            .unwrap();
    }
    fluid.advance(horizon);
    let fluid_goodput = fluid.total_arrival_rate();

    let mut pkt = PacketLevelSim::new(
        (*ft.topo).clone(),
        flows
            .iter()
            .map(|(_, src, dst, path)| PacketFlow {
                src: *src,
                dst: *dst,
                path: path.clone(),
                rate_bps: G,
                start: SimTime::ZERO,
            })
            .collect(),
        PacketSimConfig {
            horizon,
            ..PacketSimConfig::default()
        },
    );
    let pr = pkt.run();

    let rel = (fluid_goodput - pr.goodput_bps).abs() / fluid_goodput;
    assert!(
        rel < 0.10,
        "fluid {:.2}G vs packet {:.2}G differ {:.1}%",
        fluid_goodput / G,
        pr.goodput_bps / G,
        rel * 100.0
    );
}

#[test]
fn fluid_is_orders_of_magnitude_cheaper() {
    let ft = FatTree::build(4, SwitchRole::OpenFlow, G, 1_000);
    let flows = demo_paths(&ft, 7);
    let horizon = SimTime::from_millis(50);

    let mut fluid = FluidNetwork::new();
    let mut fluid_events = 0u64;
    for (tuple, src, dst, path) in &flows {
        fluid
            .start(
                SimTime::ZERO,
                FlowSpec::cbr(*src, *dst, *tuple, G),
                path.clone(),
                &ft.topo,
            )
            .unwrap();
        fluid_events += 1;
    }
    fluid.advance(horizon);

    let mut pkt = PacketLevelSim::new(
        (*ft.topo).clone(),
        flows
            .iter()
            .map(|(_, src, dst, path)| PacketFlow {
                src: *src,
                dst: *dst,
                path: path.clone(),
                rate_bps: G,
                start: SimTime::ZERO,
            })
            .collect(),
        PacketSimConfig {
            horizon,
            ..PacketSimConfig::default()
        },
    );
    let pr = pkt.run();
    assert!(
        pr.events > fluid_events * 1000,
        "packet {} vs fluid {} events",
        pr.events,
        fluid_events
    );
}

#[test]
fn uncongested_single_flow_agrees_exactly() {
    let ft = FatTree::build(4, SwitchRole::OpenFlow, G, 1_000);
    let a = ft.hosts[0];
    let b = *ft.hosts.last().unwrap();
    let tuple = demo_tuple(&ft.topo, a, b, 0);
    let path = ft.topo.all_shortest_paths(a, b)[0].clone();
    let horizon = SimTime::from_millis(100);
    let rate = 0.4 * G;

    let mut fluid = FluidNetwork::new();
    fluid
        .start(
            SimTime::ZERO,
            FlowSpec::cbr(a, b, tuple, rate),
            path.clone(),
            &ft.topo,
        )
        .unwrap();
    fluid.advance(horizon);
    let fg = fluid.total_arrival_rate();
    assert!((fg - rate).abs() < 1.0);

    let mut pkt = PacketLevelSim::new(
        (*ft.topo).clone(),
        vec![PacketFlow {
            src: a,
            dst: b,
            path,
            rate_bps: rate,
            start: SimTime::ZERO,
        }],
        PacketSimConfig {
            horizon,
            ..PacketSimConfig::default()
        },
    );
    let pr = pkt.run();
    assert!(
        (pr.goodput_bps - rate).abs() / rate < 0.02,
        "packet goodput {} vs {}",
        pr.goodput_bps,
        rate
    );
    assert_eq!(pr.dropped, 0);
}

//! The sweep engine's determinism contract: a mixed plan — BGP, SDN-ECMP
//! and Hedera control planes, with and without a link failure — must
//! produce byte-identical semantic reports at 1, 2, and N workers.
//!
//! Semantic reports (`ExperimentReport::semantic_json`) zero the wall
//! times and pump cost counters, which legitimately vary run to run;
//! everything else — goodput series, control-message counts, FTI/DES
//! occupancy, routed flows — must not depend on the schedule.

use horse::sim::SimTime;
use horse::sweep::{CheckpointOptions, FailureScenario, PolicyScenario, SweepPlan, TopologySpec};
use horse::TeApproach;

fn plan() -> SweepPlan {
    SweepPlan::new(42)
        .pods([4])
        .approaches([TeApproach::BgpEcmp, TeApproach::SdnEcmp, TeApproach::Hedera])
        .failures([
            FailureScenario::None,
            FailureScenario::CoreUplinkDown {
                at: SimTime::from_secs(2),
                restore: None,
            },
        ])
        .horizon_secs(4.0)
}

#[test]
fn mixed_plan_is_identical_across_worker_counts() {
    let plan = plan();
    let serial = plan.execute(1);
    assert_eq!(serial.stats.threads, 1);
    assert_eq!(serial.runs.len(), 6, "3 approaches x 2 failure scenarios");
    // The serial run must do real work on every scenario.
    for run in &serial.runs {
        assert!(run.report.flows_routed > 0, "{}", run.spec.label());
        assert!(run.report.control_msgs > 0, "{}", run.spec.label());
    }
    let baseline = serial.semantic_json();

    for threads in [2, 4] {
        let out = plan.execute(threads);
        assert_eq!(out.stats.threads, threads);
        assert_eq!(
            out.stats.workers.iter().map(|w| w.runs).sum::<u64>(),
            6,
            "threads={threads}: every run accounted to a worker"
        );
        assert_eq!(
            baseline,
            out.semantic_json(),
            "semantic reports diverged at {threads} workers"
        );
    }
}

/// Kill/resume extension of the determinism contract: a sweep capped
/// after 2 of 4 runs (the in-process stand-in for a SIGKILL — records
/// are flushed per run, so the on-disk state is the same), then resumed
/// under a *different* worker count, must merge a report byte-identical
/// to both an uninterrupted checkpointed sweep and the plain
/// `execute()` path.
#[test]
fn killed_and_resumed_sweep_matches_uninterrupted_report() {
    let plan = SweepPlan::new(42)
        .pods([4])
        .approaches([TeApproach::BgpEcmp, TeApproach::SdnEcmp])
        .failures([
            FailureScenario::None,
            FailureScenario::CoreUplinkDown {
                at: SimTime::from_secs(1),
                restore: None,
            },
        ])
        .horizon_secs(2.0);
    let baseline = plan.execute(1).semantic_json();

    for threads in [1, 2] {
        let dir =
            std::env::temp_dir().join(format!("horse-resume-{}-t{threads}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = CheckpointOptions::new(&dir);

        // Phase 1: die after two runs. The checkpoint file now holds
        // exactly the records a SIGKILL'd sweep would have flushed.
        let partial = plan
            .execute_checkpointed(threads, &opts.clone().max_runs(Some(2)))
            .expect("capped sweep");
        assert!(!partial.is_complete());
        assert_eq!(partial.executed, 2);
        assert_eq!(partial.pending, vec![2, 3]);

        // Phase 2: restart. Only the remainder executes; the merged
        // report must be indistinguishable from never having died —
        // even though the resume may use a different worker count.
        let resumed = plan
            .execute_checkpointed(threads % 2 + 1, &opts)
            .expect("resumed sweep");
        assert!(resumed.is_complete());
        assert_eq!(resumed.restored, 2, "completed runs must not re-execute");
        assert_eq!(resumed.executed, 2);
        assert_eq!(
            resumed.semantic_json(),
            baseline,
            "threads={threads}: resumed report diverged from uninterrupted run"
        );

        // And a clean checkpointed sweep agrees too.
        let clean_dir = dir.join("clean");
        let clean = plan
            .execute_checkpointed(threads, &CheckpointOptions::new(&clean_dir))
            .expect("clean sweep");
        assert_eq!(clean.restored, 0);
        assert_eq!(clean.semantic_json(), baseline);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The determinism contract extends to the topology and policy axes: a
/// plan mixing a fat-tree with two Topology Zoo WANs, under baseline and
/// Gao–Rexford policies and a topology-generic percentile failure, is
/// byte-identical at 1, 2, and 4 workers — and a killed-then-resumed
/// sweep of the same plan merges to the same bytes.
#[test]
fn mixed_zoo_and_fattree_plan_is_identical_across_worker_counts() {
    let plan = SweepPlan::new(42)
        .topologies([
            TopologySpec::FatTree { k: 4 },
            TopologySpec::Zoo {
                name: "Abilene".to_string(),
            },
            TopologySpec::Zoo {
                name: "AttMpls".to_string(),
            },
        ])
        .policies([PolicyScenario::Baseline, PolicyScenario::GaoRexford])
        .approaches([TeApproach::BgpEcmp])
        .failures([
            FailureScenario::None,
            FailureScenario::LinkPercentile {
                pct: 50,
                at: SimTime::from_secs(1),
                restore: None,
            },
        ])
        .horizon_secs(2.0);
    let serial = plan.execute(1);
    assert_eq!(
        serial.runs.len(),
        12,
        "3 topologies x 2 policies x 2 failures"
    );
    for run in &serial.runs {
        assert!(run.report.control_msgs > 0, "{}", run.spec.label());
        assert!(run.report.table_writes > 0, "{}", run.spec.label());
    }
    let baseline = serial.semantic_json();

    for threads in [2, 4] {
        assert_eq!(
            baseline,
            plan.execute(threads).semantic_json(),
            "semantic reports diverged at {threads} workers"
        );
    }

    // Kill after 5 runs, resume under a different worker count.
    let dir = std::env::temp_dir().join(format!("horse-zoo-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = CheckpointOptions::new(&dir);
    let partial = plan
        .execute_checkpointed(2, &opts.clone().max_runs(Some(5)))
        .expect("capped sweep");
    assert!(!partial.is_complete());
    let resumed = plan.execute_checkpointed(4, &opts).expect("resumed sweep");
    assert!(resumed.is_complete());
    assert_eq!(resumed.restored, 5);
    assert_eq!(resumed.semantic_json(), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An explicit baseline-only policy axis is the no-op it claims to be:
/// same labels, same plan hash (so checkpoints interoperate), and
/// byte-identical semantic reports versus a plan that never mentions
/// policies — on both fat-tree and zoo topologies.
#[test]
fn empty_policy_axis_is_byte_identical_to_no_policy_axis() {
    let base = || {
        SweepPlan::new(42)
            .topologies([
                TopologySpec::FatTree { k: 4 },
                TopologySpec::Zoo {
                    name: "Abilene".to_string(),
                },
            ])
            .approaches([TeApproach::BgpEcmp])
            .horizon_secs(2.0)
    };
    let implicit = base();
    let explicit = base().policies([PolicyScenario::Baseline]);
    assert_eq!(implicit.plan_hash(), explicit.plan_hash());

    let a = implicit.execute(2);
    let b = explicit.execute(2);
    assert_eq!(
        a.runs.iter().map(|r| r.spec.label()).collect::<Vec<_>>(),
        b.runs.iter().map(|r| r.spec.label()).collect::<Vec<_>>(),
    );
    assert_eq!(a.semantic_json(), b.semantic_json());
}

#[test]
fn replicates_get_distinct_seeds_and_results_stay_ordered() {
    let plan = SweepPlan::new(7)
        .pods([4])
        .approaches([TeApproach::SdnEcmp])
        .replicates(3)
        .horizon_secs(2.0);
    let out = plan.execute(2);
    assert_eq!(out.runs.len(), 3);
    let seeds: std::collections::BTreeSet<u64> = out.runs.iter().map(|r| r.spec.seed).collect();
    assert_eq!(seeds.len(), 3, "replicates must draw distinct seeds");
    for (i, run) in out.runs.iter().enumerate() {
        assert_eq!(run.spec.index, i, "results must come back in plan order");
        assert_eq!(run.spec.replicate, i);
    }
    // Different seeds hash flows onto different ECMP paths; the reports
    // should not all be clones of one another.
    let distinct: std::collections::BTreeSet<String> =
        out.runs.iter().map(|r| r.report.semantic_json()).collect();
    assert!(
        distinct.len() > 1,
        "replicates look identical — seeds unused?"
    );
}

//! The readiness-driven pump is a pure cost optimization: for any seed,
//! its report must be byte-identical (modulo wall time and the pump's own
//! cost counters) to the legacy poll-every-node pump's — on BGP and SDN
//! control planes, with rule expiry, and through link failures.
//!
//! The same contract covers intra-run parallelism: sharding a round's
//! drain across `run_threads` workers must leave the semantic report
//! byte-identical at any worker count, alone or nested inside a sweep.

use horse::net::flow::FlowSpec;
use horse::sim::{SimDuration, SimTime};
use horse::topo::bgp_setups_for;
use horse::topo::fattree::{FatTree, SwitchRole};
use horse::topo::pattern::demo_tuple;
use horse::{ControlBuild, Experiment, PumpMode, TeApproach};

const G: f64 = 1e9;

/// Runs `build()` under both pump modes and checks semantic identity;
/// returns (readiness, full-poll) reports for extra cost assertions.
fn both_modes(
    build: impl Fn() -> Experiment,
) -> (horse::ExperimentReport, horse::ExperimentReport) {
    let ready = build().pump_mode(PumpMode::Readiness).run();
    let polled = build().pump_mode(PumpMode::FullPoll).run();
    let (a, b) = (ready.semantic_json(), polled.semantic_json());
    if a != b {
        let diff: Vec<String> = a
            .lines()
            .zip(b.lines())
            .filter(|(x, y)| x != y)
            .take(4)
            .map(|(x, y)| format!("readiness: {x}\nfull poll: {y}"))
            .collect();
        panic!(
            "pump modes must be observably identical; first diffs:\n{}",
            diff.join("\n")
        );
    }
    (ready, polled)
}

#[test]
fn bgp_demo_matches_full_poll_and_does_less_work() {
    let (ready, polled) = both_modes(|| Experiment::demo(4, TeApproach::BgpEcmp, 42));
    // Same steps, strictly fewer speaker polls.
    assert_eq!(ready.pump_steps, polled.pump_steps);
    assert!(
        ready.pump_nodes_touched < polled.pump_nodes_touched,
        "readiness {} !< full poll {}",
        ready.pump_nodes_touched,
        polled.pump_nodes_touched
    );
    // The full poll touches every node every step, by definition.
    assert_eq!(polled.pump_nodes_touched, polled.pump_nodes_total);
}

#[test]
fn sdn_ecmp_demo_matches_full_poll() {
    let (ready, polled) = both_modes(|| Experiment::demo(4, TeApproach::SdnEcmp, 42));
    assert!(ready.pump_nodes_touched < polled.pump_nodes_touched);
}

#[test]
fn hedera_demo_matches_full_poll() {
    // Hedera's 5 s stats polls exercise the request/reply drain path.
    let (ready, polled) =
        both_modes(|| Experiment::demo(4, TeApproach::Hedera, 42).horizon_secs(12.0));
    assert!(ready.pump_nodes_touched < polled.pump_nodes_touched);
}

#[test]
fn rule_expiry_matches_full_poll() {
    // Flow stops at t=2 with a 2 s idle timeout: expiry sweeps and
    // FLOW_REMOVED reporting must land on the same instants in both modes.
    let (ready, polled) = both_modes(|| {
        let ft = FatTree::build(4, SwitchRole::OpenFlow, G, 1_000);
        let src = ft.hosts[0];
        let dst = ft.hosts[8];
        let tuple = demo_tuple(&ft.topo, src, dst, 0);
        let mut e = Experiment::new(ft.topo)
            .horizon_secs(10.0)
            .sdn_idle_timeout(2)
            .flow_until(
                SimTime::ZERO,
                FlowSpec::cbr(src, dst, tuple, 0.5 * G),
                SimTime::from_secs(2),
            )
            .label("pump-expiry");
        e.control = ControlBuild::SdnEcmp;
        e
    });
    assert!(ready.pump_table_scans < polled.pump_table_scans);
}

#[test]
fn bgp_link_failure_matches_full_poll() {
    // Failure + repair: transport drops, withdrawals, reconvergence — the
    // dirty-set bookkeeping must track sessions through all of it.
    let (_ready, _polled) = both_modes(|| {
        let ft = FatTree::build(4, SwitchRole::BgpRouter, G, 1_000);
        let agg = ft.aggs[0];
        let core = ft.cores[0];
        let (victim, _) = ft.topo.link_between(agg, core).expect("agg-core link");
        let mut e = Experiment::demo(4, TeApproach::BgpEcmp, 42).horizon_secs(8.0);
        e = e
            .link_down(SimTime::from_secs(2), victim)
            .link_up(SimTime::from_secs(4), victim);
        e
    });
}

#[test]
fn sdn_link_failure_matches_full_poll() {
    let (_ready, _polled) = both_modes(|| {
        let ft = FatTree::build(4, SwitchRole::OpenFlow, G, 1_000);
        let agg = ft.aggs[0];
        let core = ft.cores[0];
        let (victim, _) = ft.topo.link_between(agg, core).expect("agg-core link");
        let mut e = Experiment::demo(4, TeApproach::SdnEcmp, 42).horizon_secs(8.0);
        e = e.link_down(SimTime::from_secs(2), victim);
        e
    });
}

#[test]
fn bgp_demo_is_byte_identical_at_any_run_thread_count() {
    let run = |threads: usize| {
        Experiment::demo(4, TeApproach::BgpEcmp, 42)
            .horizon_secs(3.0)
            .run_threads(threads)
            .run()
    };
    let serial = run(1);
    assert_eq!(serial.pump_parallel_rounds, 0, "serial pump must not shard");
    assert_eq!(serial.pump_run_threads, 1);
    for threads in [2, 4] {
        let parallel = run(threads);
        assert_eq!(
            serial.semantic_json(),
            parallel.semantic_json(),
            "semantic report diverged at run_threads={threads}"
        );
        assert_eq!(parallel.pump_run_threads, threads as u64);
        assert!(
            parallel.pump_parallel_rounds > 0,
            "demo convergence must shard rounds at run_threads={threads}"
        );
        assert!(parallel.pump_parallel_nodes <= parallel.pump_nodes_touched);
    }
}

#[test]
fn bgp_link_failure_is_byte_identical_at_any_run_thread_count() {
    // Failure + repair mid-run: withdrawals and reconvergence must merge
    // in the same order whichever worker drained each speaker.
    let run = |threads: usize| {
        let ft = FatTree::build(4, SwitchRole::BgpRouter, G, 1_000);
        let agg = ft.aggs[0];
        let core = ft.cores[0];
        let (victim, _) = ft.topo.link_between(agg, core).expect("agg-core link");
        Experiment::demo(4, TeApproach::BgpEcmp, 42)
            .horizon_secs(8.0)
            .link_down(SimTime::from_secs(2), victim)
            .link_up(SimTime::from_secs(4), victim)
            .run_threads(threads)
            .run()
    };
    let serial = run(1);
    for threads in [2, 4] {
        assert_eq!(
            serial.semantic_json(),
            run(threads).semantic_json(),
            "failure run diverged at run_threads={threads}"
        );
    }
}

#[test]
fn nested_sweep_and_run_pools_compose_without_reordering() {
    // Two sweep workers each spawning two drain workers per round: the
    // scoped pools must neither deadlock nor change a single byte.
    use horse::sweep::SweepPlan;
    let plan = |run_threads: usize| {
        SweepPlan::new(42)
            .pods([4])
            .approaches([TeApproach::BgpEcmp])
            .replicates(2)
            .horizon_secs(2.0)
            .run_threads(run_threads)
    };
    let serial = plan(1).execute(1);
    let nested = plan(2).execute(2);
    assert_eq!(
        serial.semantic_json(),
        nested.semantic_json(),
        "sweep output diverged under nested run parallelism"
    );
    assert!(
        nested
            .runs
            .iter()
            .all(|r| r.report.pump_parallel_rounds > 0),
        "every nested run should have sharded at least one round"
    );
}

#[test]
fn keepalive_deadlines_survive_des_jumps_in_both_modes() {
    // A long quiet run: the only control activity after convergence is
    // keepalive exchange off the timer wheel. Both modes must wake at the
    // same instants (hold timers never fire → sessions stay up).
    let (ready, _polled) = both_modes(|| {
        let mut topo = horse::net::topology::Topology::new();
        let sn1: horse::net::Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
        let sn2: horse::net::Ipv4Prefix = "10.0.2.0/24".parse().unwrap();
        let h1 = topo.add_host("h1", std::net::Ipv4Addr::new(10, 0, 1, 2), sn1);
        let h2 = topo.add_host("h2", std::net::Ipv4Addr::new(10, 0, 2, 2), sn2);
        let r1 = topo.add_router("r1", std::net::Ipv4Addr::new(10, 0, 1, 1));
        let r2 = topo.add_router("r2", std::net::Ipv4Addr::new(10, 0, 2, 1));
        topo.add_link(h1, r1, G, 1_000);
        topo.add_link(r1, r2, G, 5_000);
        topo.add_link(r2, h2, G, 1_000);
        let setups = bgp_setups_for(
            &topo,
            horse::bgp::session::TimerConfig {
                hold_time: SimDuration::from_secs(30),
                connect_retry: SimDuration::from_secs(1),
                mrai: SimDuration::ZERO,
            },
        );
        let tuple = horse::net::flow::FiveTuple::udp(
            std::net::Ipv4Addr::new(10, 0, 1, 2),
            5000,
            std::net::Ipv4Addr::new(10, 0, 2, 2),
            5001,
        );
        let mut e = Experiment::new(topo)
            .flow(SimTime::ZERO, FlowSpec::cbr(h1, h2, tuple, 0.5 * G))
            .horizon_secs(45.0)
            .label("keepalive-quiet");
        e.control = ControlBuild::Bgp(setups);
        e
    });
    // Keepalives every hold/3 = 10 s produced FTI windows well past start.
    assert!(
        ready
            .transitions
            .iter()
            .any(|t| t.at >= SimTime::from_secs(20)),
        "keepalive chatter must keep waking the clock: {:?}",
        ready.transitions
    );
}

//! True emulation mode under test: BGP daemons on real OS threads over
//! Connection Manager byte pipes, with the hybrid clock paced against the
//! wall clock. This is the architecture of the paper's prototype; the
//! `realtime_emulation` example narrates it, this test asserts it.
//!
//! Timing assertions are deliberately loose (threads + sleeps), but the
//! *logical* outcomes — convergence, route installation, fluid accounting —
//! are exact.

use horse::bgp::session::TimerConfig;
use horse::bgp::speaker::{BgpSpeaker, SpeakerOutput};
use horse::cm::{pipe, ActivityProbe, FibInstaller};
use horse::dataplane::hash::HashMode;
use horse::dataplane::path::DataPlane;
use horse::net::addr::Ipv4Prefix;
use horse::net::flow::{FiveTuple, FlowSpec};
use horse::net::fluid::FluidNetwork;
use horse::net::topology::Topology;
use horse::sim::clock::Advance;
use horse::sim::{ClockMode, FtiConfig, HybridClock, Pacer, Pacing, SimDuration, SimTime};
use horse::topo::bgp_setups_for;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[test]
fn threaded_daemons_converge_and_route_traffic() {
    // h1 - r1 - r2 - h2.
    let mut topo = Topology::new();
    let sn1: Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
    let sn2: Ipv4Prefix = "10.0.2.0/24".parse().unwrap();
    let h1 = topo.add_host("h1", Ipv4Addr::new(10, 0, 1, 2), sn1);
    let h2 = topo.add_host("h2", Ipv4Addr::new(10, 0, 2, 2), sn2);
    let r1 = topo.add_router("r1", Ipv4Addr::new(10, 0, 1, 1));
    let r2 = topo.add_router("r2", Ipv4Addr::new(10, 0, 2, 1));
    topo.add_link(h1, r1, 1e9, 1_000);
    topo.add_link(r1, r2, 1e9, 5_000);
    topo.add_link(r2, h2, 1e9, 1_000);
    let setups = bgp_setups_for(
        &topo,
        TimerConfig {
            hold_time: SimDuration::from_secs(30),
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::ZERO,
        },
    );

    let probe = ActivityProbe::new();
    let (end_r1, end_r2) = pipe(&probe);
    let (route_tx, route_rx) =
        crossbeam::channel::unbounded::<(horse::net::NodeId, Ipv4Prefix, Vec<Ipv4Addr>)>();
    let stop = Arc::new(AtomicBool::new(false));

    let mut daemons = Vec::new();
    for (node, endpoint) in [(r1, end_r1), (r2, end_r2)] {
        let setup = setups[&node].clone();
        let route_tx = route_tx.clone();
        let stop = stop.clone();
        daemons.push(std::thread::spawn(move || {
            let mut speaker = BgpSpeaker::new(setup.config.clone());
            let t0 = Instant::now();
            let now = |t0: Instant| SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
            speaker.start(now(t0));
            let peer = setup.config.peers[0].peer_addr;
            speaker.on_transport_up(peer, now(t0));
            while !stop.load(Ordering::Relaxed) {
                if let Some(bytes) = endpoint.recv_timeout(std::time::Duration::from_millis(2)) {
                    speaker.on_bytes(peer, now(t0), &bytes);
                }
                speaker.poll_timers(now(t0));
                for out in speaker.take_outputs() {
                    match out {
                        SpeakerOutput::SendBytes { bytes, .. } => endpoint.send(bytes),
                        SpeakerOutput::RouteChanged { prefix, next_hops } => {
                            let _ = route_tx.send((node, prefix, next_hops));
                        }
                        _ => {}
                    }
                }
            }
            speaker.msgs_sent()
        }));
    }

    let mut dp = DataPlane::from_topology(&topo, HashMode::SrcDst, HashMode::FiveTuple);
    let mut installer = FibInstaller::new();
    for (node, setup) in &setups {
        installer.register(*node, setup.addr_to_port.clone());
        for (pfx, port) in &setup.connected {
            installer.install_connected(&mut dp, *node, *pfx, *port);
        }
    }
    let mut fluid = FluidNetwork::new();
    let mut clock = HybridClock::new(FtiConfig {
        increment: SimDuration::from_millis(1),
        quiescence: SimDuration::from_millis(150),
    });
    let mut pacer = Pacer::new(Pacing::real_time(), SimTime::ZERO);
    let mut last_activity = 0u64;
    let mut flow_id = None;
    let horizon = SimTime::from_millis(1500);
    let tuple = FiveTuple::udp(
        Ipv4Addr::new(10, 0, 1, 2),
        5000,
        Ipv4Addr::new(10, 0, 2, 2),
        5001,
    );

    while clock.now() < horizon {
        if probe.changed_since(&mut last_activity) {
            clock.on_control_activity();
        }
        while let Ok((node, prefix, hops)) = route_rx.try_recv() {
            installer.apply(&mut dp, node, prefix, &hops);
        }
        if flow_id.is_none() {
            if let Ok(path) = dp.resolve(&topo, h1, h2, &tuple) {
                let (id, _) = fluid
                    .start(
                        clock.now(),
                        FlowSpec::cbr(h1, h2, tuple, 0.5e9),
                        path,
                        &topo,
                    )
                    .expect("valid path");
                flow_id = Some(id);
            }
        }
        let next = clock.now() + SimDuration::from_millis(10);
        match clock.plan(Some(next), horizon) {
            Advance::RunTo(t) => {
                if clock.mode() == ClockMode::Fti {
                    pacer.pace_to(t);
                } else {
                    pacer.rebase(t);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                clock.advance_to(t);
            }
            Advance::Idle => break,
        }
    }
    fluid.advance(horizon);
    stop.store(true, Ordering::Relaxed);
    let msgs: u64 = daemons.into_iter().map(|d| d.join().expect("daemon")).sum();

    // Logical outcomes.
    let id = flow_id.expect("BGP converged and the flow started");
    let progress = fluid.progress(id).expect("flow exists");
    assert!(
        (progress.rate_bps - 0.5e9).abs() < 1.0,
        "flow runs at its demand: {}",
        progress.rate_bps
    );
    assert!(progress.bytes_sent > 0.0);
    assert!(msgs >= 6, "full handshake + updates: {msgs} messages");
    assert!(probe.snapshot() >= 6, "CM observed the control traffic");
    // Clock behavior: FTI happened (during convergence) and ended (after
    // quiescence) — despite wall-clock noise, a 1.5 s horizon is far
    // longer than handshake + 150 ms quiescence.
    let modes: Vec<ClockMode> = clock.transitions().iter().map(|t| t.mode).collect();
    assert!(modes.contains(&ClockMode::Fti), "{modes:?}");
    assert_eq!(
        clock.mode(),
        ClockMode::Des,
        "quiet control plane at the end: {modes:?}"
    );
    // Both routers' FIBs hold the opposite subnet.
    assert!(dp
        .fib(r1)
        .unwrap()
        .lookup(Ipv4Addr::new(10, 0, 2, 2))
        .is_some());
    assert!(dp
        .fib(r2)
        .unwrap()
        .lookup(Ipv4Addr::new(10, 0, 1, 2))
        .is_some());
}

//! Cross-crate integration: the hybrid clock, the control planes and the
//! fluid data plane working together through the facade crate.

use horse::sim::{ClockMode, SimDuration};
use horse::{Experiment, TeApproach};

const G: f64 = 1e9;

#[test]
fn all_three_te_approaches_route_everything_on_k4() {
    for te in [TeApproach::BgpEcmp, TeApproach::Hedera, TeApproach::SdnEcmp] {
        let report = Experiment::demo(4, te, 42).horizon_secs(8.0).run();
        assert_eq!(
            report.flows_routed,
            16,
            "{}: all 16 permutation flows must route",
            te.label()
        );
        assert!(
            report.goodput_final_bps() > 8.0 * G,
            "{}: goodput {}",
            te.label(),
            report.goodput_final_bps()
        );
    }
}

#[test]
fn k6_scales_and_keeps_shape() {
    let report = Experiment::demo(6, TeApproach::SdnEcmp, 42)
        .horizon_secs(5.0)
        .run();
    assert_eq!(report.flows_requested, 54);
    assert_eq!(report.flows_routed, 54);
    // 54 hosts × 1 Gbps ideal; ECMP hash collisions on a random
    // permutation serve roughly half of that (seed-dependent: ~24–30 Gbps
    // across seeds), so assert a bound with margin rather than knife-edge
    // at exactly half.
    assert!(
        report.goodput_final_bps() > 21.6 * G,
        "goodput {}",
        report.goodput_final_bps()
    );
}

#[test]
fn sdn_beats_bgp_hashing_granularity() {
    // The demo's central comparison: 5-tuple hashing spreads flows at
    // least as well as src/dst-IP hashing on the same permutation.
    // (One flow per host pair makes the hash inputs equivalent per flow,
    // but the hash functions differ; average over seeds to compare.)
    let mut sdn_total = 0.0;
    let mut bgp_total = 0.0;
    for seed in [1, 2, 3, 4, 5] {
        sdn_total += Experiment::demo(4, TeApproach::SdnEcmp, seed)
            .horizon_secs(3.0)
            .run()
            .goodput_final_bps();
        bgp_total += Experiment::demo(4, TeApproach::BgpEcmp, seed)
            .horizon_secs(3.0)
            .run()
            .goodput_final_bps();
    }
    assert!(
        sdn_total >= bgp_total * 0.9,
        "sdn {sdn_total} should not trail bgp {bgp_total} materially"
    );
}

#[test]
fn clock_mode_history_is_well_formed() {
    let report = Experiment::demo(4, TeApproach::Hedera, 3)
        .horizon_secs(12.0)
        .run();
    let ts = &report.transitions;
    assert_eq!(ts[0].mode, ClockMode::Des, "experiments start in DES");
    for w in ts.windows(2) {
        assert!(w[0].at <= w[1].at, "transitions ordered");
        assert_ne!(w[0].mode, w[1].mode, "transitions alternate");
    }
    // Time accounting adds up to the horizon.
    let total = report.fti_time + report.des_time;
    assert_eq!(total, SimDuration::from_nanos(report.horizon.as_nanos()));
}

#[test]
fn bgp_convergence_precedes_traffic() {
    let report = Experiment::demo(4, TeApproach::BgpEcmp, 8)
        .horizon_secs(5.0)
        .run();
    let converged = report.all_routed_at.expect("converges");
    // The first FTI period covers the convergence instant.
    let first_fti = report
        .transitions
        .iter()
        .find(|t| t.mode == ClockMode::Fti)
        .expect("BGP causes FTI");
    assert!(first_fti.at <= converged);
    // And convergence happened while routing chatter was still fresh —
    // inside the first second of virtual time.
    assert!(converged.as_secs_f64() < 1.0, "{converged}");
}

#[test]
fn goodput_series_monotone_time() {
    let report = Experiment::demo(4, TeApproach::SdnEcmp, 4)
        .horizon_secs(4.0)
        .run();
    let series = report.goodput.get("aggregate").expect("series exists");
    let pts = series.points();
    assert!(pts.len() > 10);
    for w in pts.windows(2) {
        assert!(w[0].0 <= w[1].0);
    }
    // Values bounded by physics: 0 ≤ rate ≤ 16 Gbps.
    for (_, v) in pts {
        assert!(*v >= 0.0 && *v <= 16.0 * G + 1.0, "{v}");
    }
}

#[test]
fn report_json_round_trips() {
    let report = Experiment::demo(4, TeApproach::SdnEcmp, 6)
        .horizon_secs(2.0)
        .run();
    let json = report.to_json();
    let back = horse::ExperimentReport::from_json(&json).expect("deserializes");
    assert_eq!(back.label, report.label);
    assert_eq!(back.flows_routed, report.flows_routed);
    assert_eq!(back.transitions, report.transitions);
}

//! OpenFlow rule lifecycle: idle timeouts fire only on idle flows, expired
//! rules produce FLOW_REMOVED chatter, and a re-arriving flow is re-placed
//! via PACKET_IN.

use horse::net::flow::FlowSpec;
use horse::sim::SimTime;
use horse::topo::fattree::{FatTree, SwitchRole};
use horse::topo::pattern::demo_tuple;
use horse::{ControlBuild, Experiment};

const G: f64 = 1e9;

fn one_flow_experiment(
    idle_secs: u16,
    stop_at: Option<f64>,
    horizon: f64,
) -> horse::ExperimentReport {
    let ft = FatTree::build(4, SwitchRole::OpenFlow, G, 1_000);
    let src = ft.hosts[0];
    let dst = ft.hosts[8]; // inter-pod
    let tuple = demo_tuple(&ft.topo, src, dst, 0);
    let mut e = Experiment::new(ft.topo)
        .horizon_secs(horizon)
        .sdn_idle_timeout(idle_secs)
        .label("rule-expiry");
    e = match stop_at {
        Some(s) => e.flow_until(
            SimTime::ZERO,
            FlowSpec::cbr(src, dst, tuple, 0.5 * G),
            SimTime::from_secs_f64(s),
        ),
        None => e.flow(SimTime::ZERO, FlowSpec::cbr(src, dst, tuple, 0.5 * G)),
    };
    e.control = ControlBuild::SdnEcmp;
    e.run()
}

#[test]
fn active_flow_keeps_its_rules_alive() {
    // Idle timeout 2 s, flow runs the whole 10 s: rules must not expire,
    // goodput stays flat.
    let report = one_flow_experiment(2, None, 10.0);
    let series = report.goodput.get("aggregate").unwrap();
    let at = |s: f64| series.value_at(SimTime::from_secs_f64(s)).unwrap_or(-1.0);
    assert!(
        (at(9.5) - 0.5 * G).abs() < 1e6,
        "still flowing at the end: {}",
        at(9.5)
    );
    // One placement, no re-placement churn: exactly one FTI window.
    let fti_windows = report
        .transitions
        .iter()
        .filter(|t| t.mode == horse::sim::ClockMode::Fti)
        .count();
    assert_eq!(fti_windows, 1, "{:?}", report.transitions);
}

#[test]
fn idle_rules_expire_after_flow_stops() {
    // Flow stops at t=2; idle timeout 2 s → rules expire around t=4,
    // producing FLOW_REMOVED control traffic (a late FTI window).
    let report = one_flow_experiment(2, Some(2.0), 10.0);
    let late_fti = report
        .transitions
        .iter()
        .any(|t| t.mode == horse::sim::ClockMode::Fti && t.at >= SimTime::from_secs(3));
    assert!(
        late_fti,
        "FLOW_REMOVED must wake the clock after expiry: {:?}",
        report.transitions
    );
}

#[test]
fn permanent_rules_never_expire() {
    let report = one_flow_experiment(0, Some(2.0), 10.0);
    // No expiry → no control traffic after the initial placement.
    let late_fti = report
        .transitions
        .iter()
        .any(|t| t.mode == horse::sim::ClockMode::Fti && t.at >= SimTime::from_secs(3));
    assert!(!late_fti, "{:?}", report.transitions);
}

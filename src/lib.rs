//! # Horse — faster control-plane experimentation
//!
//! A Rust reproduction of **Horse** (Fernandes et al., SIGCOMM 2019): a
//! hybrid network experimentation tool that *emulates* the control plane
//! (real BGP speakers, a real OpenFlow controller — byte-exact protocols,
//! real timers) while *simulating* the data plane (a fluid-rate traffic
//! model in a discrete-event engine). Decoupling the planes lets the
//! experiment clock sprint through data-plane time in DES mode and slow to
//! real-time-compatible Fixed Time Increments (FTI) only while control
//! traffic is in flight.
//!
//! ## Quickstart
//!
//! ```
//! use horse::{Experiment, TeApproach};
//!
//! // The paper's demo: a 4-pod fat-tree, every host sending one 1 Gbps UDP
//! // flow, scheduled by an SDN controller doing 5-tuple ECMP.
//! let report = Experiment::demo(4, TeApproach::SdnEcmp, 42)
//!     .horizon_secs(5.0)
//!     .run();
//! println!(
//!     "goodput {:.1} Gbps, {} control messages, FTI {:.0}ms / DES {:.2}s",
//!     report.goodput_final_bps() / 1e9,
//!     report.control_msgs,
//!     report.fti_time.as_millis_f64(),
//!     report.des_time.as_secs_f64(),
//! );
//! assert_eq!(report.flows_routed, 16);
//! ```
//!
//! ## Crate map
//!
//! | Layer | Crate | Re-exported as |
//! |---|---|---|
//! | Experiment API & hybrid runner | `horse-core` | [`Experiment`], [`Runner`] |
//! | DES engine, hybrid clock | `horse-sim` | [`sim`] |
//! | Topology & fluid data plane | `horse-net` | [`net`] |
//! | FIBs, flow tables, ECMP | `horse-dataplane` | [`dataplane`] |
//! | BGP-4 speaker (sans-IO) | `horse-bgp` | [`bgp`] |
//! | OpenFlow 1.0 (sans-IO) | `horse-openflow` | [`openflow`] |
//! | ECMP & Hedera apps | `horse-controller` | [`controller`] |
//! | Fat-tree & other builders | `horse-topo` | [`topo`] |
//! | Connection Manager pieces | `horse-cm` | [`cm`] |
//! | Mininet model & packet DES | `horse-baseline` | [`baseline`] |
//! | Metrics | `horse-stats` | [`stats`] |
//! | Parallel sweep engine | `horse-sweep` | [`sweep`] |
//! | Structured tracing & profiling | `horse-trace` | [`trace`] |

pub use horse_core::{
    ControlPlane, Experiment, ExperimentReport, PumpMode, PumpStats, RunConfig, Runner, SdnApp,
    TeApproach,
};
pub use horse_trace::{TraceLog, TraceOptions, TraceSummary};

/// The paper's three traffic-engineering demo scenarios, re-exported.
pub use horse_core::experiment::{ControlBuild, TrafficEvent};

/// The topology/policy grid axes, re-exported so sweep callers can name
/// them without reaching into [`topo`].
pub use horse_topo::{BuiltTopology, PolicyScenario, TopologySpec, ZooCorpus, ALL_SCENARIOS};

pub use horse_baseline as baseline;
pub use horse_bgp as bgp;
pub use horse_cm as cm;
pub use horse_controller as controller;
pub use horse_dataplane as dataplane;
pub use horse_net as net;
pub use horse_openflow as openflow;
pub use horse_sim as sim;
pub use horse_stats as stats;
pub use horse_sweep as sweep;
pub use horse_topo as topo;
pub use horse_trace as trace;

//! `horse` — command-line front end for the experiment library.
//!
//! ```text
//! horse demo    [--pods K] [--te bgp-ecmp|hedera|sdn-ecmp|all] [--seed N]
//!               [--horizon S] [--realtime] [--json FILE]
//! horse wan     [--routers N] [--seed N] [--horizon S]
//! horse failure [--pods K] [--at S] [--repair S] [--horizon S]
//! horse help
//! ```
//!
//! The paper drives Horse through a Python API; this binary plays the same
//! role for shell users: one command per demo scenario, human-readable
//! tables on stdout, optional JSON reports for scripts.

use horse::net::flow::FlowSpec;
use horse::sim::{Pacing, SimDuration, SimTime};
use horse::topo::fattree::{FatTree, SwitchRole};
use horse::topo::pattern::demo_tuple;
use horse::topo::{bgp_setups_for, waxman_wan};
use horse::{ControlBuild, Experiment, ExperimentReport, TeApproach};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Minimal `--flag value` parser: flags may appear in any order.
struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, String> {
        let mut flags = BTreeMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            if name == "realtime" {
                flags.insert(name.to_string(), String::from("true"));
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

fn print_report(report: &ExperimentReport, ideal_gbps: f64) {
    println!(
        "{:<12} flows {:>4}/{:<4} goodput {:>7.2}/{:.0} Gbps  ctl-msgs {:>6}  \
         FTI {:>7.1} ms  wall {:>7.3} s",
        report.label,
        report.flows_routed,
        report.flows_requested,
        report.goodput_final_bps() / 1e9,
        ideal_gbps,
        report.control_msgs,
        report.fti_time.as_millis_f64(),
        report.wall_setup_secs + report.wall_run_secs,
    );
}

fn maybe_write_json(args: &Args, reports: &[ExperimentReport]) -> Result<(), String> {
    if let Some(path) = args.flags.get("json") {
        let body = if reports.len() == 1 {
            reports[0].to_json()
        } else {
            let parts: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
            format!("[\n{}\n]", parts.join(",\n"))
        };
        std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("[wrote {path}]");
    }
    Ok(())
}

fn cmd_demo(args: &Args) -> Result<(), String> {
    let pods: usize = args.get("pods", 4)?;
    let seed: u64 = args.get("seed", 42)?;
    let horizon: f64 = args.get("horizon", 20.0)?;
    let te_arg: String = args.get("te", String::from("all"))?;
    let tes: Vec<TeApproach> = match te_arg.as_str() {
        "bgp-ecmp" => vec![TeApproach::BgpEcmp],
        "hedera" => vec![TeApproach::Hedera],
        "sdn-ecmp" => vec![TeApproach::SdnEcmp],
        "all" => vec![TeApproach::BgpEcmp, TeApproach::Hedera, TeApproach::SdnEcmp],
        other => return Err(format!("--te: unknown approach {other:?}")),
    };
    let ideal = (pods * pods * pods / 4) as f64;
    let mut reports = Vec::new();
    for te in tes {
        let mut e = Experiment::demo(pods, te, seed).horizon_secs(horizon);
        if args.has("realtime") {
            e = e.pacing(Pacing::real_time());
        }
        let report = e.run();
        print_report(&report, ideal);
        reports.push(report);
    }
    maybe_write_json(args, &reports)
}

fn cmd_wan(args: &Args) -> Result<(), String> {
    let routers: usize = args.get("routers", 25)?;
    let seed: u64 = args.get("seed", 7)?;
    let horizon: f64 = args.get("horizon", 30.0)?;
    let (topo, hosts, _) = waxman_wan(routers, 0.4, 0.2, 10e9, seed);
    let setups = bgp_setups_for(
        &topo,
        horse::bgp::session::TimerConfig {
            hold_time: SimDuration::from_secs(90),
            connect_retry: SimDuration::from_secs(2),
            mrai: SimDuration::ZERO,
        },
    );
    let mut e = Experiment::new(topo.clone())
        .horizon_secs(horizon)
        .label(format!("wan-{routers}"));
    for i in 0..hosts.len().min(8) {
        let a = hosts[i];
        let b = hosts[(i + hosts.len() / 2) % hosts.len()];
        let tuple = demo_tuple(&topo, a, b, i as u16);
        e = e.flow(SimTime::from_millis(10), FlowSpec::cbr(a, b, tuple, 1e9));
    }
    e.control = ControlBuild::Bgp(setups);
    let report = e.run();
    print_report(&report, 8.0);
    maybe_write_json(args, &[report])
}

fn cmd_failure(args: &Args) -> Result<(), String> {
    let pods: usize = args.get("pods", 4)?;
    let at: f64 = args.get("at", 3.0)?;
    let repair: f64 = args.get("repair", 7.0)?;
    let horizon: f64 = args.get("horizon", 10.0)?;
    let ft = FatTree::build(pods, SwitchRole::BgpRouter, 1e9, 1_000);
    let (victim, _) = ft
        .topo
        .link_between(ft.aggs[0], ft.cores[0])
        .ok_or("no agg-core link")?;
    let report = Experiment::demo(pods, TeApproach::BgpEcmp, 42)
        .horizon_secs(horizon)
        .link_down(SimTime::from_secs_f64(at), victim)
        .link_up(SimTime::from_secs_f64(repair), victim)
        .run();
    print_report(&report, (pods * pods * pods / 4) as f64);
    println!("mode timeline:");
    for (t, mode) in report.transition_rows() {
        println!("  t={t:>8.4}s -> {mode}");
    }
    maybe_write_json(args, &[report])
}

fn usage() {
    eprintln!(
        "horse — hybrid network experimentation (SIGCOMM'19 Horse, in Rust)\n\
         \n\
         USAGE:\n\
         \x20 horse demo    [--pods K] [--te bgp-ecmp|hedera|sdn-ecmp|all]\n\
         \x20               [--seed N] [--horizon S] [--realtime] [--json FILE]\n\
         \x20 horse wan     [--routers N] [--seed N] [--horizon S] [--json FILE]\n\
         \x20 horse failure [--pods K] [--at S] [--repair S] [--horizon S]\n\
         \x20 horse help"
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let result = Args::parse(rest).and_then(|args| match cmd.as_str() {
        "demo" => cmd_demo(&args),
        "wan" => cmd_wan(&args),
        "failure" => cmd_failure(&args),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}

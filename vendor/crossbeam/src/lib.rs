//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — an unbounded MPMC channel with the
//! same surface the workspace uses: cloneable [`channel::Sender`] /
//! [`channel::Receiver`], non-blocking and timeout receives, and
//! disconnect semantics (send fails when all receivers are gone; recv
//! fails when all senders are gone and the queue is drained).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC: each message goes to one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue empty but senders remain.
        Empty,
        /// Queue empty and every sender is dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived in time.
        Timeout,
        /// Queue empty and every sender is dropped.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails if every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.queue.lock().unwrap().push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect. The queue lock must be held across the
                // notify: a receiver that loaded `senders == 1` under the
                // lock but has not yet parked in `wait()` would otherwise
                // miss a notification fired into that gap — and with no
                // senders left, no later send ever wakes it (observed as a
                // rare worker-pool collector hang). Acquiring the lock
                // orders this signal after that receiver is parked.
                let _q = self.shared.queue.lock().unwrap();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap();
            }
        }

        /// Blocking receive with a wall-clock deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.shared.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.shared.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator; ends when all senders are dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Sender")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Receiver")
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_wakes_blocked_receiver() {
        // Regression: the last sender's disconnect notification must not
        // be lost in the gap between a receiver's senders-alive check and
        // its park (a lost wakeup here hung the worker-pool collector,
        // rarely, forever). Tight loop to hit the race window; a lost
        // wakeup shows up as this test hanging, not as an assert.
        for _ in 0..2000 {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        h.join().unwrap();
        let got: Vec<i32> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
        assert_eq!(got.len(), 100);
    }
}

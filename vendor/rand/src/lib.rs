//! Offline stand-in for the `rand` crate.
//!
//! Implements the deterministic subset the workspace uses: a seedable
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64) plus the
//! [`Rng::gen_range`] / [`Rng::gen`] / [`Rng::gen_bool`] front-end over
//! integer and float ranges. Streams are stable for a given seed, which
//! is all the experiment harnesses rely on (they never assume the real
//! crate's exact stream).

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Typed sampling over a range.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Types drawable uniformly from the full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u8 {
    fn draw(rng: &mut dyn RngCore) -> u8 {
        rng.next_u64() as u8
    }
}
impl Standard for u16 {
    fn draw(rng: &mut dyn RngCore) -> u16 {
        rng.next_u64() as u16
    }
}
impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        rng.next_u64() as u32
    }
}
impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// High-level sampling front-end, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Uniform draw from a type's full domain ([0,1) for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — deterministic and fast.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(1u8..=32);
            assert!((1..=32).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX / 2)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX / 2)).collect();
        assert_ne!(va, vb);
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! The container this repo builds in has no crates-io access, so the
//! workspace vendors the small subset of `bytes` it actually uses:
//! [`Bytes`] (a cheaply cloneable, sliceable, immutable byte buffer),
//! [`BytesMut`] (a growable builder), and the big-endian cursor traits
//! [`Buf`] / [`BufMut`]. Semantics match the real crate for this subset.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer (shared, sliceable view).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static slice (no copy in the real crate; one here).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte builder.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Removes and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(at);
        BytesMut {
            buf: std::mem::replace(&mut self.buf, rest),
        }
    }

    /// Clears the builder.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

/// Big-endian read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copies bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Big-endian write sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut m = BytesMut::new();
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x0405_0607);
        m.put_u64(0x0809_0a0b_0c0d_0e0f);
        let b = m.freeze();
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 0x0203);
        assert_eq!(r.get_u32(), 0x0405_0607);
        assert_eq!(r.get_u64(), 0x0809_0a0b_0c0d_0e0f);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[1, 2]);
    }

    #[test]
    fn buf_advance_on_bytes() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        b.advance(1);
        assert_eq!(&b[..], &[8, 7]);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`option::of`], [`sample::Index`], `any::<T>()`,
//! and the `proptest!` / `prop_assert!` / `prop_oneof!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case prints
//! its inputs and panics as-is) and a different — but deterministic —
//! random stream. `PROPTEST_CASES` still overrides the case count.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// The per-test deterministic RNG.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeded from the test name, so every test has a stable stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The case was rejected (filter); not a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected case.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Test-execution configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values satisfying `pred` (retries on rejection).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe generation, for [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 10000 consecutive draws",
                self.reason
            )
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "empty prop_oneof!");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draws one value from the full domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `A` (mirrors `proptest::arbitrary::any`).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rand::Rng::gen::<f64>(rng)
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary_value(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rand::RngCore::next_u64(rng) as u8;
            }
            out
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_value(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::new(rand::RngCore::next_u64(rng) as usize)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable length specifications for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec`s of `elem` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option`s (see [`of`]).
    pub struct OptionStrategy<S>(S);

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rand::Rng::gen_range(rng, 0u8..4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod sample {
    /// A position into a collection of not-yet-known size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Wraps a raw draw.
        pub fn new(raw: usize) -> Index {
            Index(raw)
        }

        /// Resolves against a concrete collection size (must be > 0).
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            self.0 % size
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Declares property tests. Each argument is drawn from its strategy;
/// the body runs once per case and may use `prop_assert!` / `?` with
/// [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let __vals = ( $( {
                        let __s = $strat;
                        $crate::strategy::Strategy::generate(&__s, &mut __rng)
                    }, )+ );
                    let __desc = format!("{:?}", __vals);
                    let ( $($pat,)+ ) = __vals;
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                { $body }
                                #[allow(unreachable_code)]
                                Ok(())
                            },
                        ),
                    );
                    match __outcome {
                        Ok(Ok(())) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                        Ok(Err(e)) => panic!(
                            "proptest {} case #{} failed: {}\ninputs: {}",
                            stringify!($name), __case, e, __desc
                        ),
                        Err(payload) => {
                            eprintln!(
                                "proptest {} case #{} panicked; inputs: {}",
                                stringify!($name), __case, __desc
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — fails the
/// current case without unwinding through foreign frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional context formatting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), __a, __b
        );
    }};
}

/// `prop_assert_ne!(a, b)` with optional context formatting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a != __b,
            "{}\n  both: {:?}",
            format!($($fmt)*), __a
        );
    }};
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..=6)) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u8..255, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u8), Just(2u8), (3u8..5)]) {
            prop_assert!((1..5).contains(&x));
        }

        #[test]
        fn filter_holds((a, b) in (0u8..4, 0u8..4).prop_filter("distinct", |(a, b)| a != b)) {
            prop_assert_ne!(a, b);
        }

        #[test]
        fn flat_map_scales(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0usize..n, 1..3))) {
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn index_resolves(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(
            crate::strategy::Strategy::generate(&(0u64..1_000_000), &mut a),
            crate::strategy::Strategy::generate(&(0u64..1_000_000), &mut b),
        );
    }
}

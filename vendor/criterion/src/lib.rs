//! Offline stand-in for the `criterion` crate.
//!
//! Implements the timing-only subset the workspace benches use:
//! [`Criterion::bench_function`] / [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!`
//! macros. No statistics, plots, or baselines — each benchmark is
//! warmed up, sampled for a fixed wall-clock budget, and its mean
//! iteration time printed to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const SAMPLE_BUDGET: Duration = Duration::from_millis(300);
const MIN_SAMPLES: u64 = 10;

/// Runs closures and accumulates their total runtime.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine`, called repeatedly until the sample budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let budget_start = Instant::now();
        while self.iters < MIN_SAMPLES || budget_start.elapsed() < SAMPLE_BUDGET {
            let t = Instant::now();
            black_box(routine());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name}: no samples");
        return;
    }
    let mean_ns = b.total.as_nanos() as f64 / b.iters as f64;
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "us")
    } else {
        (mean_ns, "ns")
    };
    println!("{name}: {value:.3} {unit}/iter ({} iters)", b.iters);
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// `group/parameter` form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with the given input, labeled by `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Benchmarks `f`, labeled by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > WARMUP_ITERS);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &k| {
            b.iter(|| black_box(k * 2))
        });
        group.finish();
    }
}

#!/usr/bin/env bash
# Repo gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."

//! Hop-by-hop flow path resolution.
//!
//! When a flow starts (or forwarding state changes), Horse walks the flow
//! from its source host through each node's forwarding state to find the
//! link path the fluid engine will charge. The walk mirrors what a packet
//! would experience:
//!
//! * a **host** delivers locally if it is the destination, otherwise sends
//!   out its single uplink;
//! * a **router** LPM-looks-up the destination IP and hashes over the ECMP
//!   next-hop set;
//! * a **switch** consults its OpenFlow table — a miss surfaces as
//!   [`ResolveError::TableMiss`], which the Connection Manager turns into a
//!   `PACKET_IN` to the controller.

use crate::fib::Fib;
use crate::flowtable::{Action, FlowKey, FlowTable};
use crate::hash::{EcmpHasher, HashMode};
use horse_net::flow::FiveTuple;
use horse_net::topology::{LinkId, NodeId, PortId, Topology};
use std::collections::HashMap;
use std::fmt;

/// Per-node forwarding state.
#[derive(Debug, Clone)]
pub enum NodeForwarding {
    /// An end host: one uplink, no forwarding.
    Host,
    /// An IP router with a FIB and an ECMP hasher.
    Router {
        /// The forwarding table (fed by the emulated routing daemon).
        fib: Fib,
        /// ECMP next-hop selection.
        hasher: EcmpHasher,
    },
    /// An OpenFlow switch with a flow table and a hasher for
    /// [`Action::EcmpHash`] entries.
    Switch {
        /// The flow table (fed by the SDN controller).
        table: FlowTable,
        /// Hash used by `EcmpHash` actions.
        hasher: EcmpHasher,
    },
}

/// Why a path could not be resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// A switch had no matching entry (or an explicit send-to-controller
    /// action): the flow's first packet becomes a `PACKET_IN`.
    TableMiss {
        /// The switch that missed.
        node: NodeId,
        /// The port the flow arrived on there.
        in_port: PortId,
    },
    /// A router had no route for the destination.
    NoRoute {
        /// The router lacking a route.
        node: NodeId,
    },
    /// A node tried to forward out a port with no (up) link.
    LinkDown {
        /// The node.
        node: NodeId,
        /// The dead port.
        port: PortId,
    },
    /// A non-destination host was asked to forward.
    NotForwarding {
        /// The host.
        node: NodeId,
    },
    /// A matching entry dropped the flow.
    Dropped {
        /// The switch with the drop rule.
        node: NodeId,
    },
    /// The walk exceeded the hop budget (forwarding loop).
    Loop,
    /// The walk reached a node with no forwarding state registered.
    Unknown {
        /// The unregistered node.
        node: NodeId,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::TableMiss { node, in_port } => {
                write!(f, "table miss at {node} (in port {in_port})")
            }
            ResolveError::NoRoute { node } => write!(f, "no route at {node}"),
            ResolveError::LinkDown { node, port } => write!(f, "link down at {node} port {port}"),
            ResolveError::NotForwarding { node } => write!(f, "host {node} does not forward"),
            ResolveError::Dropped { node } => write!(f, "dropped by rule at {node}"),
            ResolveError::Loop => write!(f, "forwarding loop"),
            ResolveError::Unknown { node } => write!(f, "no forwarding state for {node}"),
        }
    }
}

impl std::error::Error for ResolveError {}

const MAX_HOPS: usize = 64;

/// All per-node forwarding state plus the resolution walk.
#[derive(Debug, Default)]
pub struct DataPlane {
    nodes: HashMap<NodeId, NodeForwarding>,
}

impl DataPlane {
    /// An empty data plane.
    pub fn new() -> DataPlane {
        DataPlane::default()
    }

    /// Registers a host.
    pub fn add_host(&mut self, node: NodeId) {
        self.nodes.insert(node, NodeForwarding::Host);
    }

    /// Registers a router with the given hash mode (seeded by node id).
    pub fn add_router(&mut self, node: NodeId, mode: HashMode) {
        self.nodes.insert(
            node,
            NodeForwarding::Router {
                fib: Fib::new(),
                hasher: EcmpHasher::new(mode, u64::from(node.0)),
            },
        );
    }

    /// Registers a switch with the given hash mode for `EcmpHash` actions.
    pub fn add_switch(&mut self, node: NodeId, mode: HashMode) {
        self.nodes.insert(
            node,
            NodeForwarding::Switch {
                table: FlowTable::new(),
                hasher: EcmpHasher::new(mode, u64::from(node.0)),
            },
        );
    }

    /// Registers every node of `topo` by its declared kind.
    pub fn from_topology(
        topo: &Topology,
        router_mode: HashMode,
        switch_mode: HashMode,
    ) -> DataPlane {
        let mut dp = DataPlane::new();
        for id in topo.node_ids() {
            match topo.node(id).kind {
                horse_net::topology::NodeKind::Host => dp.add_host(id),
                horse_net::topology::NodeKind::Router => dp.add_router(id, router_mode),
                horse_net::topology::NodeKind::Switch => dp.add_switch(id, switch_mode),
            }
        }
        dp
    }

    /// The FIB of a router.
    pub fn fib(&self, node: NodeId) -> Option<&Fib> {
        match self.nodes.get(&node)? {
            NodeForwarding::Router { fib, .. } => Some(fib),
            _ => None,
        }
    }

    /// Mutable FIB of a router (routes installed by the CM).
    pub fn fib_mut(&mut self, node: NodeId) -> Option<&mut Fib> {
        match self.nodes.get_mut(&node)? {
            NodeForwarding::Router { fib, .. } => Some(fib),
            _ => None,
        }
    }

    /// The flow table of a switch.
    pub fn table(&self, node: NodeId) -> Option<&FlowTable> {
        match self.nodes.get(&node)? {
            NodeForwarding::Switch { table, .. } => Some(table),
            _ => None,
        }
    }

    /// Mutable flow table of a switch (rules installed by the controller).
    pub fn table_mut(&mut self, node: NodeId) -> Option<&mut FlowTable> {
        match self.nodes.get_mut(&node)? {
            NodeForwarding::Switch { table, .. } => Some(table),
            _ => None,
        }
    }

    /// The forwarding state of a node.
    pub fn forwarding(&self, node: NodeId) -> Option<&NodeForwarding> {
        self.nodes.get(&node)
    }

    /// Walks `tuple` from `src` to `dst`, returning the link path.
    pub fn resolve(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        tuple: &FiveTuple,
    ) -> Result<Vec<LinkId>, ResolveError> {
        let mut path = Vec::new();
        let mut cur = src;
        let mut in_port: Option<PortId> = None;
        for _ in 0..MAX_HOPS {
            if cur == dst {
                return Ok(path);
            }
            let out_port = self.decide(topo, cur, in_port, dst, tuple)?;
            let link_id = topo
                .link_at(cur, out_port)
                .filter(|l| topo.link(*l).up)
                .ok_or(ResolveError::LinkDown {
                    node: cur,
                    port: out_port,
                })?;
            let link = topo.link(link_id);
            let next = link.other(cur);
            in_port = link.endpoint_on(next).map(|e| e.port);
            path.push(link_id);
            cur = next;
        }
        Err(ResolveError::Loop)
    }

    /// One node's forwarding decision for a flow.
    fn decide(
        &self,
        topo: &Topology,
        node: NodeId,
        in_port: Option<PortId>,
        _dst: NodeId,
        tuple: &FiveTuple,
    ) -> Result<PortId, ResolveError> {
        match self.nodes.get(&node) {
            None => Err(ResolveError::Unknown { node }),
            Some(NodeForwarding::Host) => {
                if in_port.is_some() {
                    // A host received a flow that isn't for it.
                    return Err(ResolveError::NotForwarding { node });
                }
                // Source host: single uplink, port 0.
                if topo.node(node).port_count() == 0 {
                    return Err(ResolveError::LinkDown {
                        node,
                        port: PortId(0),
                    });
                }
                Ok(PortId(0))
            }
            Some(NodeForwarding::Router { fib, hasher }) => {
                let (_, entry) = fib
                    .lookup(tuple.dst_ip)
                    .ok_or(ResolveError::NoRoute { node })?;
                if entry.next_hops.is_empty() {
                    return Err(ResolveError::NoRoute { node });
                }
                let idx = hasher.select(tuple, entry.next_hops.len());
                Ok(entry.next_hops[idx].port)
            }
            Some(NodeForwarding::Switch { table, hasher }) => {
                let key = FlowKey::ipv4(in_port, *tuple);
                let entry = table.lookup(&key).ok_or(ResolveError::TableMiss {
                    node,
                    in_port: in_port.unwrap_or(PortId(0)),
                })?;
                match entry.decide(tuple, hasher) {
                    Action::Output(p) => Ok(p),
                    Action::Controller => Err(ResolveError::TableMiss {
                        node,
                        in_port: in_port.unwrap_or(PortId(0)),
                    }),
                    Action::Drop | Action::EcmpHash => Err(ResolveError::Dropped { node }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::{NextHop, RouteEntry, RouteOrigin};
    use crate::flowtable::{FlowEntry, Match};
    use horse_net::addr::Ipv4Prefix;
    use horse_net::topology::NodeKind;
    use horse_sim::SimTime;
    use std::net::Ipv4Addr;

    const G: f64 = 1e9;

    /// h0 - r0 - r1 - h1 line of routers.
    fn router_line() -> (Topology, DataPlane, [NodeId; 4]) {
        let mut t = Topology::new();
        let sn0: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let sn1: Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
        let h0 = t.add_host("h0", Ipv4Addr::new(10, 0, 0, 10), sn0);
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 1, 10), sn1);
        let r0 = t.add_router("r0", Ipv4Addr::new(10, 255, 0, 0));
        let r1 = t.add_router("r1", Ipv4Addr::new(10, 255, 0, 1));
        t.add_link(h0, r0, G, 0);
        t.add_link(r0, r1, G, 0);
        t.add_link(r1, h1, G, 0);
        let mut dp = DataPlane::from_topology(&t, HashMode::SrcDst, HashMode::FiveTuple);
        // r0: 10.0.1.0/24 via r1 (port 1 = second link added on r0).
        let (_, r0_to_r1) = t.link_between(r0, r1).unwrap();
        dp.fib_mut(r0).unwrap().insert(
            sn1,
            RouteEntry::new(
                vec![NextHop {
                    port: r0_to_r1,
                    gateway: Ipv4Addr::new(10, 255, 0, 1),
                }],
                RouteOrigin::Bgp,
            ),
        );
        // r1: 10.0.1.0/24 connected via h1.
        let (_, r1_to_h1) = t.link_between(r1, h1).unwrap();
        dp.fib_mut(r1).unwrap().insert(
            sn1,
            RouteEntry::new(
                vec![NextHop {
                    port: r1_to_h1,
                    gateway: Ipv4Addr::new(10, 0, 1, 10),
                }],
                RouteOrigin::Connected,
            ),
        );
        (t, dp, [h0, h1, r0, r1])
    }

    fn tuple() -> FiveTuple {
        FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 10),
            1234,
            Ipv4Addr::new(10, 0, 1, 10),
            80,
        )
    }

    #[test]
    fn resolves_through_routers() {
        let (t, dp, [h0, h1, ..]) = router_line();
        let path = dp.resolve(&t, h0, h1, &tuple()).unwrap();
        assert_eq!(path.len(), 3);
        let nodes = t.path_nodes(h0, &path).unwrap();
        assert_eq!(nodes.last(), Some(&h1));
    }

    #[test]
    fn missing_route_is_noroute() {
        let (t, mut dp, [h0, h1, r0, _]) = router_line();
        dp.fib_mut(r0).unwrap().flush_origin(RouteOrigin::Bgp);
        match dp.resolve(&t, h0, h1, &tuple()) {
            Err(ResolveError::NoRoute { node }) => assert_eq!(node, r0),
            other => panic!("expected NoRoute, got {other:?}"),
        }
    }

    #[test]
    fn down_link_detected() {
        let (mut t, dp, [h0, h1, r0, r1]) = router_line();
        let (lid, _) = t.link_between(r0, r1).unwrap();
        t.link_mut(lid).up = false;
        match dp.resolve(&t, h0, h1, &tuple()) {
            Err(ResolveError::LinkDown { node, .. }) => assert_eq!(node, r0),
            other => panic!("expected LinkDown, got {other:?}"),
        }
    }

    #[test]
    fn same_node_is_empty_path() {
        let (t, dp, [h0, ..]) = router_line();
        assert_eq!(dp.resolve(&t, h0, h0, &tuple()).unwrap(), vec![]);
    }

    /// h0 - s0 - h1 switch triangle for SDN cases.
    fn switch_pair() -> (Topology, DataPlane, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let sn: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let h0 = t.add_host("h0", Ipv4Addr::new(10, 0, 0, 1), sn);
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 2), sn);
        let s0 = t.add_switch("s0", Ipv4Addr::new(10, 255, 0, 1));
        t.add_link(h0, s0, G, 0);
        t.add_link(s0, h1, G, 0);
        let dp = DataPlane::from_topology(&t, HashMode::SrcDst, HashMode::FiveTuple);
        (t, dp, h0, h1, s0)
    }

    #[test]
    fn empty_switch_table_is_table_miss() {
        let (t, dp, h0, h1, s0) = switch_pair();
        match dp.resolve(&t, h0, h1, &tuple()) {
            Err(ResolveError::TableMiss { node, in_port }) => {
                assert_eq!(node, s0);
                assert_eq!(in_port, PortId(0));
            }
            other => panic!("expected TableMiss, got {other:?}"),
        }
    }

    #[test]
    fn installed_rule_resolves_switch_path() {
        let (t, mut dp, h0, h1, s0) = switch_pair();
        let (_, out) = t.link_between(s0, h1).unwrap();
        dp.table_mut(s0).unwrap().add(
            FlowEntry::new(Match::exact(tuple()), 10, vec![Action::Output(out)]),
            SimTime::ZERO,
        );
        let path = dp.resolve(&t, h0, h1, &tuple()).unwrap();
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn drop_rule_reports_dropped() {
        let (t, mut dp, h0, h1, s0) = switch_pair();
        dp.table_mut(s0).unwrap().add(
            FlowEntry::new(Match::any(), 1, vec![Action::Drop]),
            SimTime::ZERO,
        );
        assert_eq!(
            dp.resolve(&t, h0, h1, &tuple()),
            Err(ResolveError::Dropped { node: s0 })
        );
    }

    #[test]
    fn controller_action_reports_miss() {
        let (t, mut dp, h0, h1, s0) = switch_pair();
        dp.table_mut(s0).unwrap().add(
            FlowEntry::new(Match::any(), 1, vec![Action::Controller]),
            SimTime::ZERO,
        );
        assert!(matches!(
            dp.resolve(&t, h0, h1, &tuple()),
            Err(ResolveError::TableMiss { .. })
        ));
    }

    #[test]
    fn forwarding_loop_detected() {
        // Two switches pointing at each other.
        let mut t = Topology::new();
        let sn: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let h0 = t.add_host("h0", Ipv4Addr::new(10, 0, 0, 1), sn);
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 2), sn);
        let s0 = t.add_switch("s0", Ipv4Addr::new(10, 255, 0, 1));
        let s1 = t.add_switch("s1", Ipv4Addr::new(10, 255, 0, 2));
        t.add_link(h0, s0, G, 0);
        t.add_link(s0, s1, G, 0);
        t.add_link(s1, h1, G, 0);
        let mut dp = DataPlane::from_topology(&t, HashMode::SrcDst, HashMode::FiveTuple);
        let (_, s0_to_s1) = t.link_between(s0, s1).unwrap();
        let (_, s1_to_s0) = t.link_between(s1, s0).unwrap();
        dp.table_mut(s0).unwrap().add(
            FlowEntry::new(Match::any(), 1, vec![Action::Output(s0_to_s1)]),
            SimTime::ZERO,
        );
        dp.table_mut(s1).unwrap().add(
            FlowEntry::new(Match::any(), 1, vec![Action::Output(s1_to_s0)]),
            SimTime::ZERO,
        );
        assert_eq!(dp.resolve(&t, h0, h1, &tuple()), Err(ResolveError::Loop));
    }

    #[test]
    fn host_does_not_forward_transit() {
        // h0 - h1 - h2 line: h1 must refuse transit.
        let mut t = Topology::new();
        let sn: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let h0 = t.add_host("h0", Ipv4Addr::new(10, 0, 0, 1), sn);
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 2), sn);
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 3), sn);
        t.add_link(h0, h1, G, 0);
        t.add_link(h1, h2, G, 0);
        let dp = DataPlane::from_topology(&t, HashMode::SrcDst, HashMode::FiveTuple);
        assert_eq!(
            dp.resolve(&t, h0, h2, &tuple()),
            Err(ResolveError::NotForwarding { node: h1 })
        );
    }

    #[test]
    fn ecmp_router_splits_by_hash() {
        // src host, two parallel routers merged at a far router, dst host.
        let mut t = Topology::new();
        let sn: Ipv4Prefix = "10.0.0.0/24".parse().unwrap();
        let dn: Ipv4Prefix = "10.0.1.0/24".parse().unwrap();
        let h0 = t.add_host("h0", Ipv4Addr::new(10, 0, 0, 1), sn);
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 1, 1), dn);
        let r = t.add_router("r", Ipv4Addr::new(10, 255, 0, 0));
        let a = t.add_router("a", Ipv4Addr::new(10, 255, 0, 1));
        let b = t.add_router("b", Ipv4Addr::new(10, 255, 0, 2));
        let m = t.add_router("m", Ipv4Addr::new(10, 255, 0, 3));
        t.add_link(h0, r, G, 0);
        t.add_link(r, a, G, 0);
        t.add_link(r, b, G, 0);
        t.add_link(a, m, G, 0);
        t.add_link(b, m, G, 0);
        t.add_link(m, h1, G, 0);
        let mut dp = DataPlane::from_topology(&t, HashMode::FiveTuple, HashMode::FiveTuple);
        let gw = Ipv4Addr::UNSPECIFIED;
        let (_, r_a) = t.link_between(r, a).unwrap();
        let (_, r_b) = t.link_between(r, b).unwrap();
        dp.fib_mut(r).unwrap().insert(
            dn,
            RouteEntry::new(
                vec![
                    NextHop {
                        port: r_a,
                        gateway: gw,
                    },
                    NextHop {
                        port: r_b,
                        gateway: gw,
                    },
                ],
                RouteOrigin::Bgp,
            ),
        );
        for via in [a, b] {
            let (_, out) = t.link_between(via, m).unwrap();
            dp.fib_mut(via).unwrap().insert(
                dn,
                RouteEntry::new(
                    vec![NextHop {
                        port: out,
                        gateway: gw,
                    }],
                    RouteOrigin::Bgp,
                ),
            );
        }
        let (_, m_h1) = t.link_between(m, h1).unwrap();
        dp.fib_mut(m).unwrap().insert(
            dn,
            RouteEntry::new(
                vec![NextHop {
                    port: m_h1,
                    gateway: gw,
                }],
                RouteOrigin::Connected,
            ),
        );
        // Many flows with different ports must use both middle routers.
        let mut used = std::collections::HashSet::new();
        for sp in 0..32u16 {
            let tup = FiveTuple::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                1000 + sp,
                Ipv4Addr::new(10, 0, 1, 1),
                80,
            );
            let path = dp.resolve(&t, h0, h1, &tup).unwrap();
            let nodes = t.path_nodes(h0, &path).unwrap();
            used.insert(nodes[2]); // the middle router
            assert_eq!(nodes.last(), Some(&h1));
        }
        assert_eq!(used.len(), 2, "5-tuple hashing must spread over both paths");
        // Verify every node is registered; sanity on kinds.
        assert_eq!(t.nodes_of_kind(NodeKind::Router).len(), 4);
    }
}

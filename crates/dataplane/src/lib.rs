//! # horse-dataplane — simulated forwarding models
//!
//! The simulated data plane forwards *flows*, not packets: when a flow
//! starts (or the control plane rewrites state), Horse resolves the flow's
//! path hop by hop through each node's forwarding state. This crate holds
//! those forwarding states and the resolution logic:
//!
//! * [`fib`] — a longest-prefix-match FIB (binary trie) with ECMP next-hop
//!   sets, used by routers whose routes are installed by the emulated BGP
//!   daemons.
//! * [`flowtable`] — an OpenFlow 1.0 style match/action table with
//!   priorities and wildcards, used by SDN switches.
//! * [`hash`] — deterministic ECMP hash functions: the BGP demo hashes
//!   (src IP, dst IP); the SDN demo hashes the full 5-tuple.
//! * [`path`] — the hop-by-hop resolver: walk a flow from its source host
//!   through FIBs and flow tables to its destination, yielding the link
//!   path the fluid engine needs — or a `TableMiss` that becomes an
//!   OpenFlow `PACKET_IN`.

pub mod fib;
pub mod flowtable;
pub mod hash;
pub mod path;

pub use fib::{Fib, NextHop, RouteEntry, RouteOrigin};
pub use flowtable::{Action, FlowEntry, FlowTable, Match};
pub use hash::{EcmpHasher, HashMode};
pub use path::{DataPlane, NodeForwarding, ResolveError};

//! Deterministic ECMP hashing.
//!
//! Hardware ECMP picks among equal-cost next hops by hashing header fields.
//! The demo's BGP scenario hashes source and destination IP only; the SDN
//! scenario hashes the full 5-tuple (the finer granularity is exactly what
//! the demo contrasts). The hash is FNV-1a over the selected fields plus a
//! per-device seed, so distinct switches make independent choices yet every
//! run is reproducible.

use horse_net::flow::FiveTuple;

/// Which header fields participate in the hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashMode {
    /// Source and destination IPv4 address only (the demo's "BGP plus ECMP
    /// path selection by hashing of IP source and destination").
    SrcDst,
    /// Full transport 5-tuple (the demo's "SDN 5-tuple ECMP").
    FiveTuple,
}

/// A seeded ECMP hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcmpHasher {
    /// Field selection.
    pub mode: HashMode,
    /// Per-device seed (e.g. the node id) to decorrelate choices.
    pub seed: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME);
    for b in data {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl EcmpHasher {
    /// A hasher with the given mode and seed.
    pub fn new(mode: HashMode, seed: u64) -> EcmpHasher {
        EcmpHasher { mode, seed }
    }

    /// Hashes the selected fields of `tuple`.
    pub fn hash(&self, tuple: &FiveTuple) -> u64 {
        let mut buf = [0u8; 13];
        buf[0..4].copy_from_slice(&tuple.src_ip.octets());
        buf[4..8].copy_from_slice(&tuple.dst_ip.octets());
        match self.mode {
            HashMode::SrcDst => fnv1a(self.seed, &buf[0..8]),
            HashMode::FiveTuple => {
                buf[8] = tuple.proto.number();
                buf[9..11].copy_from_slice(&tuple.src_port.to_be_bytes());
                buf[11..13].copy_from_slice(&tuple.dst_port.to_be_bytes());
                fnv1a(self.seed, &buf)
            }
        }
    }

    /// Picks an index into a choice set of size `n` (n must be non-zero).
    pub fn select(&self, tuple: &FiveTuple, n: usize) -> usize {
        debug_assert!(n > 0, "empty ECMP set");
        (self.hash(tuple) % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn tuple(sp: u16) -> FiveTuple {
        FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            sp,
            Ipv4Addr::new(10, 0, 1, 1),
            80,
        )
    }

    #[test]
    fn deterministic() {
        let h = EcmpHasher::new(HashMode::FiveTuple, 42);
        assert_eq!(h.hash(&tuple(5)), h.hash(&tuple(5)));
        assert_eq!(h.select(&tuple(5), 4), h.select(&tuple(5), 4));
    }

    #[test]
    fn srcdst_ignores_ports() {
        let h = EcmpHasher::new(HashMode::SrcDst, 42);
        assert_eq!(h.hash(&tuple(1)), h.hash(&tuple(2)));
    }

    #[test]
    fn five_tuple_sees_ports() {
        let h = EcmpHasher::new(HashMode::FiveTuple, 42);
        let mut distinct = std::collections::HashSet::new();
        for sp in 0..64 {
            distinct.insert(h.hash(&tuple(sp)));
        }
        assert!(distinct.len() > 60, "port changes must disperse the hash");
    }

    #[test]
    fn seeds_decorrelate_devices() {
        let a = EcmpHasher::new(HashMode::FiveTuple, 1);
        let b = EcmpHasher::new(HashMode::FiveTuple, 2);
        let mut differ = 0;
        for sp in 0..128 {
            if a.select(&tuple(sp), 4) != b.select(&tuple(sp), 4) {
                differ += 1;
            }
        }
        assert!(differ > 32, "different seeds should pick differently often");
    }

    #[test]
    fn selection_is_roughly_uniform() {
        let h = EcmpHasher::new(HashMode::FiveTuple, 7);
        let n = 4;
        let mut counts = vec![0usize; n];
        for sp in 0..4000u16 {
            counts[h.select(&tuple(sp), n)] += 1;
        }
        for c in &counts {
            assert!((700..1300).contains(c), "bucket badly skewed: {counts:?}");
        }
    }
}

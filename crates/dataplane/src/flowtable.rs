//! An OpenFlow 1.0 style flow table: priority-ordered wildcard matching.
//!
//! Semantics follow the OF 1.0 spec closely enough for the demo's
//! controllers: highest priority wins; among equal priorities the earliest
//! installed entry wins; an absent field is a wildcard; `nw_src`/`nw_dst`
//! wildcards are prefix masks. Entries carry idle/hard timeouts and byte
//! counters (fed by the fluid model) so `FLOW_STATS` replies are meaningful
//! — Hedera's demand estimation depends on them.

use crate::hash::EcmpHasher;
use horse_net::addr::{Ipv4Prefix, MacAddr};
use horse_net::flow::FiveTuple;
use horse_net::topology::PortId;
use horse_sim::{SimDuration, SimTime};

/// The lookup key presented to a flow table: arrival port plus the flow's
/// header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowKey {
    /// Port the packet (flow) arrived on; `None` at the source host's first
    /// switch lookup before entering the network is never used — keys built
    /// by the resolver always carry a port.
    pub in_port: Option<PortId>,
    /// Source MAC.
    pub dl_src: MacAddr,
    /// Destination MAC.
    pub dl_dst: MacAddr,
    /// EtherType.
    pub dl_type: u16,
    /// Transport 5-tuple.
    pub tuple: FiveTuple,
}

impl FlowKey {
    /// Key for an IPv4 flow with the given tuple arriving on `in_port`.
    pub fn ipv4(in_port: Option<PortId>, tuple: FiveTuple) -> FlowKey {
        FlowKey {
            in_port,
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_type: horse_net::packet::ETHERTYPE_IPV4,
            tuple,
        }
    }
}

/// An OF 1.0 match: `None`/default means wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Match {
    /// Match on the arrival port.
    pub in_port: Option<PortId>,
    /// Match on source MAC.
    pub dl_src: Option<MacAddr>,
    /// Match on destination MAC.
    pub dl_dst: Option<MacAddr>,
    /// Match on EtherType.
    pub dl_type: Option<u16>,
    /// Match on IP protocol.
    pub nw_proto: Option<u8>,
    /// Match on source IP under a prefix mask.
    pub nw_src: Option<Ipv4Prefix>,
    /// Match on destination IP under a prefix mask.
    pub nw_dst: Option<Ipv4Prefix>,
    /// Match on transport source port.
    pub tp_src: Option<u16>,
    /// Match on transport destination port.
    pub tp_dst: Option<u16>,
}

impl Match {
    /// The all-wildcard match.
    pub fn any() -> Match {
        Match::default()
    }

    /// An exact 5-tuple match (the rule the SDN ECMP and Hedera apps pin
    /// individual flows with).
    pub fn exact(tuple: FiveTuple) -> Match {
        Match {
            dl_type: Some(horse_net::packet::ETHERTYPE_IPV4),
            nw_proto: Some(tuple.proto.number()),
            nw_src: Some(Ipv4Prefix::host(tuple.src_ip)),
            nw_dst: Some(Ipv4Prefix::host(tuple.dst_ip)),
            tp_src: Some(tuple.src_port),
            tp_dst: Some(tuple.dst_port),
            ..Match::default()
        }
    }

    /// A destination-prefix match (proactive L3-style rules).
    pub fn dst_prefix(prefix: Ipv4Prefix) -> Match {
        Match {
            dl_type: Some(horse_net::packet::ETHERTYPE_IPV4),
            nw_dst: Some(prefix),
            ..Match::default()
        }
    }

    /// Does this match cover `key`?
    pub fn matches(&self, key: &FlowKey) -> bool {
        if let Some(p) = self.in_port {
            if key.in_port != Some(p) {
                return false;
            }
        }
        if let Some(m) = self.dl_src {
            if key.dl_src != m {
                return false;
            }
        }
        if let Some(m) = self.dl_dst {
            if key.dl_dst != m {
                return false;
            }
        }
        if let Some(t) = self.dl_type {
            if key.dl_type != t {
                return false;
            }
        }
        if let Some(p) = self.nw_proto {
            if key.tuple.proto.number() != p {
                return false;
            }
        }
        if let Some(pre) = self.nw_src {
            if !pre.contains(key.tuple.src_ip) {
                return false;
            }
        }
        if let Some(pre) = self.nw_dst {
            if !pre.contains(key.tuple.dst_ip) {
                return false;
            }
        }
        if let Some(p) = self.tp_src {
            if key.tuple.src_port != p {
                return false;
            }
        }
        if let Some(p) = self.tp_dst {
            if key.tuple.dst_port != p {
                return false;
            }
        }
        true
    }
}

/// What to do with a matching flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward out a port.
    Output(PortId),
    /// Punt to the SDN controller (PACKET_IN).
    Controller,
    /// Hash over a set of candidate ports (OF 1.0 has no group tables; this
    /// models switch-local ECMP the way fs-sdn style simulators do). The
    /// ports live in the owning entry's `ecmp_ports`.
    EcmpHash,
    /// Drop.
    Drop,
}

/// One table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntry {
    /// Match condition.
    pub matcher: Match,
    /// Priority; higher wins.
    pub priority: u16,
    /// Action list (first actionable item wins in this model).
    pub actions: Vec<Action>,
    /// Candidate ports for [`Action::EcmpHash`].
    pub ecmp_ports: Vec<PortId>,
    /// Opaque controller cookie.
    pub cookie: u64,
    /// Remove after this long without traffic (zero = never).
    pub idle_timeout: SimDuration,
    /// Remove this long after installation (zero = never).
    pub hard_timeout: SimDuration,
    /// Installation time.
    pub installed: SimTime,
    /// Last time traffic matched.
    pub last_hit: SimTime,
    /// Bytes accounted to this entry (fed from the fluid model).
    pub byte_count: u64,
    /// Flows (packets, in OF terms) accounted to this entry.
    pub packet_count: u64,
}

impl FlowEntry {
    /// A new entry with zeroed counters.
    pub fn new(matcher: Match, priority: u16, actions: Vec<Action>) -> FlowEntry {
        FlowEntry {
            matcher,
            priority,
            actions,
            ecmp_ports: Vec::new(),
            cookie: 0,
            idle_timeout: SimDuration::ZERO,
            hard_timeout: SimDuration::ZERO,
            installed: SimTime::ZERO,
            last_hit: SimTime::ZERO,
            byte_count: 0,
            packet_count: 0,
        }
    }

    /// Resolves this entry's forwarding decision for `tuple`. Only the
    /// first action is consulted: Horse's pipeline is single-action.
    pub fn decide(&self, tuple: &FiveTuple, hasher: &EcmpHasher) -> Action {
        match self.actions.first() {
            Some(Action::EcmpHash) if !self.ecmp_ports.is_empty() => {
                let idx = hasher.select(tuple, self.ecmp_ports.len());
                Action::Output(self.ecmp_ports[idx])
            }
            Some(Action::EcmpHash) | None => Action::Drop,
            Some(other) => *other,
        }
    }
}

/// A priority-ordered flow table.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Installs an entry at `now`. OF `ADD` semantics: an existing entry
    /// with identical match and priority is replaced (counters reset).
    pub fn add(&mut self, mut entry: FlowEntry, now: SimTime) {
        entry.installed = now;
        entry.last_hit = now;
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.matcher == entry.matcher && e.priority == entry.priority)
        {
            self.entries[pos] = entry;
            return;
        }
        // Keep sorted: priority desc, then installation order (stable).
        let pos = self
            .entries
            .partition_point(|e| e.priority >= entry.priority);
        self.entries.insert(pos, entry);
    }

    /// Strict delete: removes the entry with this exact match and priority.
    pub fn delete_strict(&mut self, matcher: &Match, priority: u16) -> Option<FlowEntry> {
        let pos = self
            .entries
            .iter()
            .position(|e| &e.matcher == matcher && e.priority == priority)?;
        Some(self.entries.remove(pos))
    }

    /// Non-strict delete: removes every entry whose match equals `matcher`
    /// regardless of priority. Returns how many were removed.
    pub fn delete_matching(&mut self, matcher: &Match) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| &e.matcher != matcher);
        before - self.entries.len()
    }

    /// Looks up the highest-priority entry covering `key`.
    pub fn lookup(&self, key: &FlowKey) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.matcher.matches(key))
    }

    /// Mutable lookup (for counter updates).
    pub fn lookup_mut(&mut self, key: &FlowKey) -> Option<&mut FlowEntry> {
        self.entries.iter_mut().find(|e| e.matcher.matches(key))
    }

    /// Accounts `bytes` of traffic matching `key` at `now`.
    pub fn account(&mut self, key: &FlowKey, bytes: u64, now: SimTime) {
        if let Some(e) = self.lookup_mut(key) {
            e.byte_count += bytes;
            e.packet_count += 1;
            e.last_hit = now;
        }
    }

    /// Removes entries whose idle or hard timeout has expired at `now`,
    /// returning them (they become `FLOW_REMOVED` messages upstream).
    pub fn expire(&mut self, now: SimTime) -> Vec<FlowEntry> {
        let mut expired = Vec::new();
        self.entries.retain(|e| {
            let hard =
                !e.hard_timeout.is_zero() && now.duration_since(e.installed) >= e.hard_timeout;
            let idle =
                !e.idle_timeout.is_zero() && now.duration_since(e.last_hit) >= e.idle_timeout;
            if hard || idle {
                expired.push(e.clone());
                false
            } else {
                true
            }
        });
        expired
    }

    /// The earliest instant any entry can expire: the min over entries of
    /// `installed + hard_timeout` and `last_hit + idle_timeout` (zero
    /// timeouts never expire). `None` when no entry carries a timeout.
    /// An expiry *index* over tables built on this makes timeout sweeps
    /// event-driven: a sweep is only needed when this deadline is reached,
    /// not every engine step.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .filter_map(|e| {
                let hard = (!e.hard_timeout.is_zero()).then(|| e.installed + e.hard_timeout);
                let idle = (!e.idle_timeout.is_zero()).then(|| e.last_hit + e.idle_timeout);
                match (hard, idle) {
                    (Some(h), Some(i)) => Some(h.min(i)),
                    (h, i) => h.or(i),
                }
            })
            .min()
    }

    /// All entries, highest priority first.
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// Mutable entries (stats feeding).
    pub fn entries_mut(&mut self) -> &mut [FlowEntry] {
        &mut self.entries
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashMode;
    use std::net::Ipv4Addr;

    fn tuple() -> FiveTuple {
        FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            5000,
            Ipv4Addr::new(10, 0, 1, 1),
            80,
        )
    }

    fn key() -> FlowKey {
        FlowKey::ipv4(Some(PortId(1)), tuple())
    }

    #[test]
    fn exact_match_hits_and_misses() {
        let m = Match::exact(tuple());
        assert!(m.matches(&key()));
        let mut other = tuple();
        other.src_port = 5001;
        assert!(!m.matches(&FlowKey::ipv4(Some(PortId(1)), other)));
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(Match::any().matches(&key()));
    }

    #[test]
    fn prefix_match_on_dst() {
        let m = Match::dst_prefix("10.0.1.0/24".parse().unwrap());
        assert!(m.matches(&key()));
        let mut other = tuple();
        other.dst_ip = Ipv4Addr::new(10, 0, 2, 1);
        assert!(!m.matches(&FlowKey::ipv4(None, other)));
    }

    #[test]
    fn in_port_match() {
        let m = Match {
            in_port: Some(PortId(1)),
            ..Match::default()
        };
        assert!(m.matches(&key()));
        assert!(!m.matches(&FlowKey::ipv4(Some(PortId(2)), tuple())));
        assert!(!m.matches(&FlowKey::ipv4(None, tuple())));
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.add(
            FlowEntry::new(Match::any(), 1, vec![Action::Drop]),
            SimTime::ZERO,
        );
        t.add(
            FlowEntry::new(Match::exact(tuple()), 100, vec![Action::Output(PortId(3))]),
            SimTime::ZERO,
        );
        let e = t.lookup(&key()).unwrap();
        assert_eq!(e.actions[0], Action::Output(PortId(3)));
    }

    #[test]
    fn equal_priority_first_installed_wins() {
        let mut t = FlowTable::new();
        let m1 = Match {
            tp_dst: Some(80),
            ..Match::default()
        };
        let m2 = Match {
            tp_src: Some(5000),
            ..Match::default()
        };
        t.add(
            FlowEntry::new(m1, 10, vec![Action::Output(PortId(1))]),
            SimTime::ZERO,
        );
        t.add(
            FlowEntry::new(m2, 10, vec![Action::Output(PortId(2))]),
            SimTime::ZERO,
        );
        let e = t.lookup(&key()).unwrap();
        assert_eq!(e.actions[0], Action::Output(PortId(1)));
    }

    #[test]
    fn add_replaces_same_match_and_priority() {
        let mut t = FlowTable::new();
        let m = Match::exact(tuple());
        t.add(
            FlowEntry::new(m, 5, vec![Action::Output(PortId(1))]),
            SimTime::ZERO,
        );
        t.add(
            FlowEntry::new(m, 5, vec![Action::Output(PortId(2))]),
            SimTime::ZERO,
        );
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.lookup(&key()).unwrap().actions[0],
            Action::Output(PortId(2))
        );
    }

    #[test]
    fn strict_and_nonstrict_delete() {
        let mut t = FlowTable::new();
        let m = Match::exact(tuple());
        t.add(FlowEntry::new(m, 5, vec![Action::Drop]), SimTime::ZERO);
        t.add(FlowEntry::new(m, 9, vec![Action::Drop]), SimTime::ZERO);
        assert!(t.delete_strict(&m, 5).is_some());
        assert_eq!(t.len(), 1);
        assert_eq!(t.delete_matching(&m), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn miss_returns_none() {
        let t = FlowTable::new();
        assert!(t.lookup(&key()).is_none());
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new();
        let mut e = FlowEntry::new(Match::any(), 1, vec![Action::Drop]);
        e.hard_timeout = SimDuration::from_secs(5);
        t.add(e, SimTime::ZERO);
        assert!(t.expire(SimTime::from_secs(4)).is_empty());
        let gone = t.expire(SimTime::from_secs(5));
        assert_eq!(gone.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_refreshed_by_traffic() {
        let mut t = FlowTable::new();
        let mut e = FlowEntry::new(Match::any(), 1, vec![Action::Drop]);
        e.idle_timeout = SimDuration::from_secs(5);
        t.add(e, SimTime::ZERO);
        t.account(&key(), 1000, SimTime::from_secs(4));
        assert!(
            t.expire(SimTime::from_secs(8)).is_empty(),
            "hit at t=4 keeps it"
        );
        let gone = t.expire(SimTime::from_secs(9));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].byte_count, 1000);
    }

    #[test]
    fn next_expiry_tracks_min_over_timeouts() {
        let mut t = FlowTable::new();
        assert_eq!(t.next_expiry(), None);
        let mut permanent = FlowEntry::new(Match::any(), 1, vec![Action::Drop]);
        permanent.priority = 1;
        t.add(permanent, SimTime::ZERO);
        assert_eq!(t.next_expiry(), None, "zero timeouts never expire");
        let mut idle = FlowEntry::new(Match::exact(tuple()), 2, vec![Action::Drop]);
        idle.idle_timeout = SimDuration::from_secs(5);
        t.add(idle, SimTime::from_secs(1));
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(6)));
        let mut hard = Match::default();
        hard.tp_dst = Some(99);
        let mut hard_e = FlowEntry::new(hard, 3, vec![Action::Drop]);
        hard_e.hard_timeout = SimDuration::from_secs(3);
        t.add(hard_e, SimTime::from_secs(1));
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(4)));
        // A hit pushes the idle deadline out but not the hard one.
        t.account(&key(), 10, SimTime::from_secs(3));
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(4)));
        let gone = t.expire(SimTime::from_secs(4));
        assert_eq!(gone.len(), 1);
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(8)));
    }

    #[test]
    fn ecmp_action_resolves_to_port() {
        let hasher = EcmpHasher::new(HashMode::FiveTuple, 3);
        let mut e = FlowEntry::new(Match::any(), 1, vec![Action::EcmpHash]);
        e.ecmp_ports = vec![PortId(1), PortId(2), PortId(3)];
        match e.decide(&tuple(), &hasher) {
            Action::Output(p) => assert!(e.ecmp_ports.contains(&p)),
            other => panic!("expected Output, got {other:?}"),
        }
        // Same tuple, same choice.
        assert_eq!(e.decide(&tuple(), &hasher), e.decide(&tuple(), &hasher));
    }

    #[test]
    fn ecmp_with_no_ports_drops() {
        let hasher = EcmpHasher::new(HashMode::FiveTuple, 3);
        let e = FlowEntry::new(Match::any(), 1, vec![Action::EcmpHash]);
        assert_eq!(e.decide(&tuple(), &hasher), Action::Drop);
    }

    #[test]
    fn empty_actions_drop() {
        let hasher = EcmpHasher::new(HashMode::FiveTuple, 3);
        let e = FlowEntry::new(Match::any(), 1, vec![]);
        assert_eq!(e.decide(&tuple(), &hasher), Action::Drop);
    }
}

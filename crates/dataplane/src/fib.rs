//! A longest-prefix-match forwarding table (binary trie) with ECMP
//! next-hop sets.
//!
//! The trie is bit-indexed on the IPv4 destination: each node has two
//! children (bit 0 / bit 1) and an optional route. Lookup walks at most 32
//! levels remembering the deepest route seen. Nodes live in a `Vec` arena;
//! removal clears the route but leaves structural nodes in place (tables in
//! these experiments are rewritten far more often than shrunk, and the arena
//! keeps the hot lookup path allocation-free).

use horse_net::addr::Ipv4Prefix;
use horse_net::topology::PortId;
use std::net::Ipv4Addr;

/// Where a route came from — used to prefer more specific sources when the
/// control plane rewrites state, and for debugging dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteOrigin {
    /// Directly connected subnet.
    Connected,
    /// Installed statically by the experiment script.
    Static,
    /// Learned from the emulated BGP daemon.
    Bgp,
}

/// One ECMP next hop: the local output port (and, for debugging, the
/// gateway address it corresponds to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NextHop {
    /// Output port on this node.
    pub port: PortId,
    /// The neighbor address this hop points at (informational).
    pub gateway: Ipv4Addr,
}

/// A routing entry: one or more equal-cost next hops.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteEntry {
    /// Equal-cost next hops, in deterministic (sorted) order.
    pub next_hops: Vec<NextHop>,
    /// Provenance.
    pub origin: RouteOrigin,
}

impl RouteEntry {
    /// Builds an entry, sorting hops for determinism and dropping duplicates.
    pub fn new(mut next_hops: Vec<NextHop>, origin: RouteOrigin) -> RouteEntry {
        next_hops.sort();
        next_hops.dedup();
        RouteEntry { next_hops, origin }
    }
}

#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: [Option<u32>; 2],
    route: Option<RouteEntry>,
}

/// A longest-prefix-match FIB.
#[derive(Debug, Clone)]
pub struct Fib {
    nodes: Vec<TrieNode>,
    route_count: usize,
}

impl Default for Fib {
    fn default() -> Self {
        Self::new()
    }
}

impl Fib {
    /// An empty FIB.
    pub fn new() -> Fib {
        Fib {
            nodes: vec![TrieNode::default()],
            route_count: 0,
        }
    }

    /// Number of installed routes.
    pub fn len(&self) -> usize {
        self.route_count
    }

    /// True if no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.route_count == 0
    }

    /// Inserts (or replaces) the route for `prefix`. Returns the previous
    /// entry if one existed.
    pub fn insert(&mut self, prefix: Ipv4Prefix, entry: RouteEntry) -> Option<RouteEntry> {
        let idx = self
            .walk_to(prefix, true)
            .expect("create=true always finds");
        let old = self.nodes[idx as usize].route.replace(entry);
        if old.is_none() {
            self.route_count += 1;
        }
        old
    }

    /// Removes the route for `prefix`, returning it if present.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<RouteEntry> {
        let idx = self.walk_to(prefix, false)?;
        let old = self.nodes[idx as usize].route.take();
        if old.is_some() {
            self.route_count -= 1;
        }
        old
    }

    /// The exact-match entry for `prefix`, if installed.
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&RouteEntry> {
        let idx = self.walk_to_ref(prefix)?;
        self.nodes[idx as usize].route.as_ref()
    }

    /// Longest-prefix-match lookup: the most specific entry covering `dst`.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<(Ipv4Prefix, &RouteEntry)> {
        let bits = u32::from(dst);
        let mut idx = 0u32;
        let mut best: Option<(u8, u32)> = self.nodes[0].route.as_ref().map(|_| (0u8, 0u32));
        for depth in 0..32u8 {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            match self.nodes[idx as usize].children[bit] {
                Some(next) => {
                    idx = next;
                    if self.nodes[idx as usize].route.is_some() {
                        best = Some((depth + 1, idx));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, idx)| {
            let entry = self.nodes[idx as usize].route.as_ref().expect("tracked");
            // Reconstruct the prefix from dst + len (host bits masked).
            (Ipv4Prefix::new(dst, len), entry)
        })
    }

    /// All installed `(prefix, entry)` pairs, in trie (lexicographic) order.
    pub fn iter(&self) -> Vec<(Ipv4Prefix, &RouteEntry)> {
        let mut out = Vec::with_capacity(self.route_count);
        self.collect(0, 0, 0, &mut out);
        out
    }

    /// Drops every route of a given origin (e.g. flush BGP routes on session
    /// reset), returning how many were removed.
    pub fn flush_origin(&mut self, origin: RouteOrigin) -> usize {
        let mut removed = 0;
        for n in &mut self.nodes {
            if n.route.as_ref().is_some_and(|r| r.origin == origin) {
                n.route = None;
                removed += 1;
            }
        }
        self.route_count -= removed;
        removed
    }

    fn collect<'a>(
        &'a self,
        idx: u32,
        acc: u32,
        depth: u8,
        out: &mut Vec<(Ipv4Prefix, &'a RouteEntry)>,
    ) {
        let node = &self.nodes[idx as usize];
        if let Some(route) = &node.route {
            let addr = Ipv4Addr::from(if depth == 0 { 0 } else { acc << (32 - depth) });
            out.push((Ipv4Prefix::new(addr, depth), route));
        }
        for bit in 0..2u32 {
            if let Some(child) = node.children[bit as usize] {
                self.collect(child, (acc << 1) | bit, depth + 1, out);
            }
        }
    }

    fn walk_to(&mut self, prefix: Ipv4Prefix, create: bool) -> Option<u32> {
        let bits = u32::from(prefix.network());
        let mut idx = 0u32;
        for depth in 0..prefix.len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            idx = match self.nodes[idx as usize].children[bit] {
                Some(next) => next,
                None if create => {
                    let next = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::default());
                    self.nodes[idx as usize].children[bit] = Some(next);
                    next
                }
                None => return None,
            };
        }
        Some(idx)
    }

    fn walk_to_ref(&self, prefix: Ipv4Prefix) -> Option<u32> {
        let bits = u32::from(prefix.network());
        let mut idx = 0u32;
        for depth in 0..prefix.len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            idx = self.nodes[idx as usize].children[bit]?;
        }
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(port: u16) -> NextHop {
        NextHop {
            port: PortId(port),
            gateway: Ipv4Addr::UNSPECIFIED,
        }
    }

    fn entry(ports: &[u16]) -> RouteEntry {
        RouteEntry::new(ports.iter().map(|p| hop(*p)).collect(), RouteOrigin::Static)
    }

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.insert(p("10.0.0.0/8"), entry(&[1]));
        fib.insert(p("10.1.0.0/16"), entry(&[2]));
        fib.insert(p("10.1.2.0/24"), entry(&[3]));
        let (pre, e) = fib.lookup(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
        assert_eq!(pre, p("10.1.2.0/24"));
        assert_eq!(e.next_hops[0].port, PortId(3));
        let (pre, e) = fib.lookup(Ipv4Addr::new(10, 1, 9, 9)).unwrap();
        assert_eq!(pre, p("10.1.0.0/16"));
        assert_eq!(e.next_hops[0].port, PortId(2));
        let (pre, _) = fib.lookup(Ipv4Addr::new(10, 200, 0, 1)).unwrap();
        assert_eq!(pre, p("10.0.0.0/8"));
        assert!(fib.lookup(Ipv4Addr::new(11, 0, 0, 1)).is_none());
    }

    #[test]
    fn default_route_catches_all() {
        let mut fib = Fib::new();
        fib.insert(Ipv4Prefix::DEFAULT, entry(&[7]));
        let (pre, e) = fib.lookup(Ipv4Addr::new(203, 0, 113, 1)).unwrap();
        assert_eq!(pre, Ipv4Prefix::DEFAULT);
        assert_eq!(e.next_hops[0].port, PortId(7));
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut fib = Fib::new();
        assert!(fib.insert(p("10.0.0.0/24"), entry(&[1])).is_none());
        let old = fib.insert(p("10.0.0.0/24"), entry(&[2])).unwrap();
        assert_eq!(old.next_hops[0].port, PortId(1));
        assert_eq!(fib.len(), 1);
    }

    #[test]
    fn remove_restores_shorter_match() {
        let mut fib = Fib::new();
        fib.insert(p("10.0.0.0/8"), entry(&[1]));
        fib.insert(p("10.1.0.0/16"), entry(&[2]));
        assert!(fib.remove(p("10.1.0.0/16")).is_some());
        let (pre, _) = fib.lookup(Ipv4Addr::new(10, 1, 0, 1)).unwrap();
        assert_eq!(pre, p("10.0.0.0/8"));
        assert!(fib.remove(p("10.1.0.0/16")).is_none(), "double remove");
        assert_eq!(fib.len(), 1);
    }

    #[test]
    fn ecmp_hops_sorted_and_deduped() {
        let e = RouteEntry::new(vec![hop(3), hop(1), hop(3), hop(2)], RouteOrigin::Bgp);
        let ports: Vec<u16> = e.next_hops.iter().map(|h| h.port.0).collect();
        assert_eq!(ports, vec![1, 2, 3]);
    }

    #[test]
    fn host_route_matches_single_address() {
        let mut fib = Fib::new();
        fib.insert(Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, 5)), entry(&[9]));
        assert!(fib.lookup(Ipv4Addr::new(10, 0, 0, 5)).is_some());
        assert!(fib.lookup(Ipv4Addr::new(10, 0, 0, 6)).is_none());
    }

    #[test]
    fn iter_lists_all_routes() {
        let mut fib = Fib::new();
        let prefixes = ["0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24"];
        for (i, s) in prefixes.iter().enumerate() {
            fib.insert(p(s), entry(&[i as u16]));
        }
        let got: Vec<String> = fib.iter().iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(got.len(), 4);
        for s in prefixes {
            assert!(got.contains(&s.to_string()), "{s} missing from {got:?}");
        }
    }

    #[test]
    fn flush_origin_removes_only_that_origin() {
        let mut fib = Fib::new();
        fib.insert(
            p("10.0.0.0/24"),
            RouteEntry::new(vec![hop(1)], RouteOrigin::Connected),
        );
        fib.insert(
            p("10.0.1.0/24"),
            RouteEntry::new(vec![hop(2)], RouteOrigin::Bgp),
        );
        fib.insert(
            p("10.0.2.0/24"),
            RouteEntry::new(vec![hop(3)], RouteOrigin::Bgp),
        );
        assert_eq!(fib.flush_origin(RouteOrigin::Bgp), 2);
        assert_eq!(fib.len(), 1);
        assert!(fib.lookup(Ipv4Addr::new(10, 0, 0, 1)).is_some());
        assert!(fib.lookup(Ipv4Addr::new(10, 0, 1, 1)).is_none());
    }

    #[test]
    fn get_is_exact_not_lpm() {
        let mut fib = Fib::new();
        fib.insert(p("10.0.0.0/8"), entry(&[1]));
        assert!(fib.get(p("10.0.0.0/8")).is_some());
        assert!(fib.get(p("10.0.0.0/16")).is_none());
    }
}

//! Property tests: the LPM trie and the OpenFlow table agree with naive
//! reference implementations under arbitrary operation sequences.

use horse_dataplane::fib::{Fib, NextHop, RouteEntry, RouteOrigin};
use horse_dataplane::flowtable::{Action, FlowEntry, FlowKey, FlowTable, Match};
use horse_net::addr::Ipv4Prefix;
use horse_net::flow::FiveTuple;
use horse_net::topology::PortId;
use horse_sim::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn prefixes() -> impl Strategy<Value = Ipv4Prefix> {
    // Cluster prefixes in 10/8 so inserts overlap heavily.
    (0u32..=0xffff, 8u8..=32)
        .prop_map(|(bits, len)| Ipv4Prefix::new(Ipv4Addr::from(0x0a00_0000 | bits), len))
}

#[derive(Debug, Clone)]
enum FibOp {
    Insert(Ipv4Prefix, u16),
    Remove(Ipv4Prefix),
    Lookup(u32),
}

fn fib_ops() -> impl Strategy<Value = Vec<FibOp>> {
    prop::collection::vec(
        prop_oneof![
            (prefixes(), 0u16..16).prop_map(|(p, port)| FibOp::Insert(p, port)),
            prefixes().prop_map(FibOp::Remove),
            (0u32..=0x1ffff).prop_map(FibOp::Lookup),
        ],
        0..120,
    )
}

fn entry(port: u16) -> RouteEntry {
    RouteEntry::new(
        vec![NextHop {
            port: PortId(port),
            gateway: Ipv4Addr::UNSPECIFIED,
        }],
        RouteOrigin::Static,
    )
}

proptest! {
    /// The trie behaves exactly like a Vec of (prefix → entry) with
    /// longest-prefix-wins lookup.
    #[test]
    fn fib_matches_naive_model(ops in fib_ops()) {
        let mut fib = Fib::new();
        let mut model: Vec<(Ipv4Prefix, u16)> = Vec::new();
        for op in ops {
            match op {
                FibOp::Insert(p, port) => {
                    fib.insert(p, entry(port));
                    model.retain(|(mp, _)| *mp != p);
                    model.push((p, port));
                }
                FibOp::Remove(p) => {
                    let trie = fib.remove(p).is_some();
                    let had = model.iter().any(|(mp, _)| *mp == p);
                    model.retain(|(mp, _)| *mp != p);
                    prop_assert_eq!(trie, had);
                }
                FibOp::Lookup(bits) => {
                    let dst = Ipv4Addr::from(0x0a00_0000 | bits);
                    let got = fib.lookup(dst).map(|(p, e)| (p, e.next_hops[0].port.0));
                    let want = model
                        .iter()
                        .filter(|(p, _)| p.contains(dst))
                        .max_by_key(|(p, _)| p.len())
                        .map(|(p, port)| (*p, *port));
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(fib.len(), model.len());
        }
    }

    /// Fuzzing decode surfaces: random destination addresses against a
    /// random FIB never panic and always return covering prefixes.
    #[test]
    fn fib_lookup_result_covers(inserts in prop::collection::vec((prefixes(), 0u16..4), 1..40), probe in any::<u32>()) {
        let mut fib = Fib::new();
        for (p, port) in &inserts {
            fib.insert(*p, entry(*port));
        }
        let dst = Ipv4Addr::from(probe);
        if let Some((p, _)) = fib.lookup(dst) {
            prop_assert!(p.contains(dst), "{p} must cover {dst}");
        }
    }
}

fn tuples() -> impl Strategy<Value = FiveTuple> {
    (0u8..4, 0u8..4, 1000u16..1008, 2000u16..2004).prop_map(|(s, d, sp, dp)| {
        FiveTuple::udp(
            Ipv4Addr::new(10, 0, 0, s + 1),
            sp,
            Ipv4Addr::new(10, 0, 1, d + 1),
            dp,
        )
    })
}

fn matches() -> impl Strategy<Value = Match> {
    (tuples(), 0u8..4).prop_map(|(t, kind)| match kind {
        0 => Match::exact(t),
        1 => Match::dst_prefix(Ipv4Prefix::new(t.dst_ip, 24)),
        2 => Match {
            tp_dst: Some(t.dst_port),
            ..Match::default()
        },
        _ => Match::any(),
    })
}

proptest! {
    /// Flow-table lookup returns the highest-priority earliest-installed
    /// covering entry — verified against a naive scan.
    #[test]
    fn flow_table_matches_naive_model(
        entries in prop::collection::vec((matches(), 0u16..8), 0..30),
        probes in prop::collection::vec(tuples(), 1..20),
    ) {
        let mut table = FlowTable::new();
        // Naive model: keep (match, priority, cookie) in install order with
        // OF add-replaces-identical semantics.
        let mut model: Vec<(Match, u16, u64)> = Vec::new();
        for (i, (m, prio)) in entries.iter().enumerate() {
            let mut e = FlowEntry::new(*m, *prio, vec![Action::Output(PortId(1))]);
            e.cookie = i as u64;
            table.add(e, SimTime::ZERO);
            if let Some(slot) = model.iter_mut().find(|(mm, pp, _)| mm == m && pp == prio) {
                slot.2 = i as u64;
            } else {
                model.push((*m, *prio, i as u64));
            }
        }
        prop_assert_eq!(table.len(), model.len());
        for probe in probes {
            let key = FlowKey::ipv4(Some(PortId(0)), probe);
            let got = table.lookup(&key).map(|e| e.cookie);
            // Naive: stable sort by priority desc preserves install order.
            let mut sorted = model.clone();
            sorted.sort_by_key(|(_, p, _)| std::cmp::Reverse(*p));
            let want = sorted
                .iter()
                .find(|(m, _, _)| m.matches(&key))
                .map(|(_, _, c)| *c);
            prop_assert_eq!(got, want, "probe {}", probe);
        }
    }
}

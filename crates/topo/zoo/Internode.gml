Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Internode"
  directed 0
  node [
    id 0
    label "Internode PoP 0"
    Latitude -22.99547
    Longitude 118.36655
  ]
  node [
    id 1
    label "Internode PoP 1"
    Latitude -32.51233
    Longitude 134.36297
  ]
  node [
    id 2
    label "Internode PoP 2"
    Latitude -20.81793
    Longitude 121.52052
  ]
  node [
    id 3
    label "Internode PoP 3"
    Latitude -31.57756
    Longitude 126.00909
  ]
  node [
    id 4
    label "Internode PoP 4"
    Latitude -30.54583
    Longitude 128.47694
  ]
  node [
    id 5
    label "Internode PoP 5"
    Latitude -25.5886
    Longitude 133.70038
  ]
  node [
    id 6
    label "Internode PoP 6"
    Latitude -36.01498
    Longitude 137.67162
  ]
  node [
    id 7
    label "Internode PoP 7"
    Latitude -34.055
    Longitude 135.77167
  ]
  node [
    id 8
    label "Internode PoP 8"
    Latitude -33.23599
    Longitude 133.00492
  ]
  node [
    id 9
    label "Internode PoP 9"
    Latitude -37.30112
    Longitude 150.15023
  ]
  node [
    id 10
    label "Internode PoP 10"
    Latitude -19.06467
    Longitude 134.76989
  ]
  node [
    id 11
    label "Internode PoP 11"
    Latitude -18.07372
    Longitude 144.37913
  ]
  node [
    id 12
    label "Internode PoP 12"
    Latitude -18.39658
    Longitude 126.70742
  ]
  node [
    id 13
    label "Internode PoP 13"
    Latitude -27.18976
    Longitude 133.90896
  ]
  node [
    id 14
    label "Internode PoP 14"
    Latitude -21.2329
    Longitude 121.55904
  ]
  node [
    id 15
    label "Internode PoP 15"
    Latitude -20.52079
    Longitude 125.19432
  ]
  node [
    id 16
    label "Internode PoP 16"
    Latitude -32.5353
    Longitude 133.5076
  ]
  node [
    id 17
    label "Internode PoP 17"
    Latitude -17.10623
    Longitude 149.67246
  ]
  node [
    id 18
    label "Internode PoP 18"
    Latitude -22.89004
    Longitude 129.47164
  ]
  node [
    id 19
    label "Internode PoP 19"
    Latitude -35.78584
    Longitude 124.4345
  ]
  node [
    id 20
    label "Internode PoP 20"
    Latitude -33.51032
    Longitude 125.38389
  ]
  node [
    id 21
    label "Internode PoP 21"
    Latitude -25.55235
    Longitude 133.94545
  ]
  node [
    id 22
    label "Internode PoP 22"
    Latitude -28.32169
    Longitude 127.15601
  ]
  node [
    id 23
    label "Internode PoP 23"
    Latitude -17.53229
    Longitude 149.03484
  ]
  node [
    id 24
    label "Internode PoP 24"
    Latitude -20.21152
    Longitude 142.90293
  ]
  node [
    id 25
    label "Internode PoP 25"
    Latitude -16.46588
    Longitude 146.78981
  ]
  node [
    id 26
    label "Internode PoP 26"
    Latitude -22.76861
    Longitude 134.8576
  ]
  node [
    id 27
    label "Internode PoP 27"
    Latitude -24.00334
    Longitude 128.82034
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 2
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 14
  ]
  edge [
    source 5
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 26
  ]
  edge [
    source 6
    target 7
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 20
  ]
  edge [
    source 6
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 21
  ]
  edge [
    source 12
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 14
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 16
  ]
  edge [
    source 15
    target 24
  ]
  edge [
    source 16
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 19
  ]
  edge [
    source 18
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 23
    target 24
  ]
  edge [
    source 24
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
]

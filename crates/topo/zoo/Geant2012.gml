Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Geant2012"
  directed 0
  node [
    id 0
    label "Geant2012 PoP 0"
    Latitude 57.8429
    Longitude 6.80407
  ]
  node [
    id 1
    label "Geant2012 PoP 1"
    Latitude 47.51225
    Longitude -4.89222
  ]
  node [
    id 2
    label "Geant2012 PoP 2"
    Latitude 45.99049
    Longitude 13.48239
  ]
  node [
    id 3
    label "Geant2012 PoP 3"
    Latitude 47.00991
    Longitude 5.51513
  ]
  node [
    id 4
    label "Geant2012 PoP 4"
    Latitude 40.02126
    Longitude 5.75878
  ]
  node [
    id 5
    label "Geant2012 PoP 5"
    Latitude 54.21282
    Longitude 1.85158
  ]
  node [
    id 6
    label "Geant2012 PoP 6"
    Latitude 39.38029
    Longitude 19.9918
  ]
  node [
    id 7
    label "Geant2012 PoP 7"
    Latitude 56.41688
    Longitude 18.92915
  ]
  node [
    id 8
    label "Geant2012 PoP 8"
    Latitude 55.24042
    Longitude 24.87816
  ]
  node [
    id 9
    label "Geant2012 PoP 9"
    Latitude 43.98128
    Longitude 9.06844
  ]
  node [
    id 10
    label "Geant2012 PoP 10"
    Latitude 38.27914
    Longitude 21.84842
  ]
  node [
    id 11
    label "Geant2012 PoP 11"
    Latitude 44.01855
    Longitude 19.75237
  ]
  node [
    id 12
    label "Geant2012 PoP 12"
    Latitude 42.75726
    Longitude -6.76451
  ]
  node [
    id 13
    label "Geant2012 PoP 13"
    Latitude 52.89913
    Longitude 6.18179
  ]
  node [
    id 14
    label "Geant2012 PoP 14"
    Latitude 38.16836
    Longitude 23.61412
  ]
  node [
    id 15
    label "Geant2012 PoP 15"
    Latitude 56.40299
    Longitude 20.54563
  ]
  node [
    id 16
    label "Geant2012 PoP 16"
    Latitude 49.50421
    Longitude 19.61062
  ]
  node [
    id 17
    label "Geant2012 PoP 17"
    Latitude 48.60636
    Longitude 14.6342
  ]
  node [
    id 18
    label "Geant2012 PoP 18"
    Latitude 48.60413
    Longitude 13.31855
  ]
  node [
    id 19
    label "Geant2012 PoP 19"
    Latitude 53.17054
    Longitude 20.27842
  ]
  node [
    id 20
    label "Geant2012 PoP 20"
    Latitude 52.31564
    Longitude 16.76961
  ]
  node [
    id 21
    label "Geant2012 PoP 21"
    Latitude 44.14437
    Longitude 14.80099
  ]
  node [
    id 22
    label "Geant2012 PoP 22"
    Latitude 53.02209
    Longitude -4.90772
  ]
  node [
    id 23
    label "Geant2012 PoP 23"
    Latitude 39.56481
    Longitude 5.45168
  ]
  node [
    id 24
    label "Geant2012 PoP 24"
    Latitude 38.70326
    Longitude 11.92734
  ]
  node [
    id 25
    label "Geant2012 PoP 25"
    Latitude 52.32363
    Longitude 13.7585
  ]
  node [
    id 26
    label "Geant2012 PoP 26"
    Latitude 55.19851
    Longitude 11.83305
  ]
  node [
    id 27
    label "Geant2012 PoP 27"
    Latitude 45.57427
    Longitude 5.14024
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 10
  ]
  edge [
    source 0
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 15
  ]
  edge [
    source 5
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 8
  ]
  edge [
    source 5
    target 21
  ]
  edge [
    source 6
    target 7
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 24
  ]
  edge [
    source 7
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 7
    target 14
  ]
  edge [
    source 8
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 10
  ]
  edge [
    source 9
    target 19
  ]
  edge [
    source 9
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 27
  ]
  edge [
    source 10
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 15
  ]
  edge [
    source 11
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 17
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 19
  ]
  edge [
    source 19
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 19
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 22
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 23
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

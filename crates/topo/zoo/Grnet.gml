Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Grnet"
  directed 0
  node [
    id 0
    label "Grnet PoP 0"
    Latitude 38.03365
    Longitude 20.7867
  ]
  node [
    id 1
    label "Grnet PoP 1"
    Latitude 44.06199
    Longitude 21.04441
  ]
  node [
    id 2
    label "Grnet PoP 2"
    Latitude 43.55436
    Longitude 3.93239
  ]
  node [
    id 3
    label "Grnet PoP 3"
    Latitude 56.64581
    Longitude 0.68885
  ]
  node [
    id 4
    label "Grnet PoP 4"
    Latitude 51.92942
    Longitude 17.42276
  ]
  node [
    id 5
    label "Grnet PoP 5"
    Latitude 46.0103
    Longitude 8.9256
  ]
  node [
    id 6
    label "Grnet PoP 6"
    Latitude 53.39791
    Longitude 7.45287
  ]
  node [
    id 7
    label "Grnet PoP 7"
    Latitude 47.80175
    Longitude 8.55148
  ]
  node [
    id 8
    label "Grnet PoP 8"
    Latitude 43.72671
    Longitude -4.25116
  ]
  node [
    id 9
    label "Grnet PoP 9"
    Latitude 51.71246
    Longitude 24.41853
  ]
  node [
    id 10
    label "Grnet PoP 10"
    Latitude 58.33568
    Longitude 19.64458
  ]
  node [
    id 11
    label "Grnet PoP 11"
    Latitude 54.5493
    Longitude 21.10131
  ]
  node [
    id 12
    label "Grnet PoP 12"
    Latitude 51.42819
    Longitude 16.45203
  ]
  node [
    id 13
    label "Grnet PoP 13"
    Latitude 42.89184
    Longitude -5.25684
  ]
  node [
    id 14
    label "Grnet PoP 14"
    Latitude 57.27687
    Longitude -6.93503
  ]
  node [
    id 15
    label "Grnet PoP 15"
    Latitude 53.93386
    Longitude 15.63777
  ]
  node [
    id 16
    label "Grnet PoP 16"
    Latitude 53.04219
    Longitude 8.82646
  ]
  node [
    id 17
    label "Grnet PoP 17"
    Latitude 43.41753
    Longitude -2.41698
  ]
  node [
    id 18
    label "Grnet PoP 18"
    Latitude 41.53944
    Longitude -3.84434
  ]
  node [
    id 19
    label "Grnet PoP 19"
    Latitude 48.82253
    Longitude 8.01071
  ]
  node [
    id 20
    label "Grnet PoP 20"
    Latitude 43.47561
    Longitude 4.92404
  ]
  node [
    id 21
    label "Grnet PoP 21"
    Latitude 46.0715
    Longitude 3.06184
  ]
  node [
    id 22
    label "Grnet PoP 22"
    Latitude 38.56812
    Longitude 12.62468
  ]
  node [
    id 23
    label "Grnet PoP 23"
    Latitude 44.49644
    Longitude 14.84743
  ]
  node [
    id 24
    label "Grnet PoP 24"
    Latitude 44.46013
    Longitude 18.48428
  ]
  node [
    id 25
    label "Grnet PoP 25"
    Latitude 47.63843
    Longitude 10.92947
  ]
  node [
    id 26
    label "Grnet PoP 26"
    Latitude 54.34641
    Longitude -4.4185
  ]
  node [
    id 27
    label "Grnet PoP 27"
    Latitude 48.20885
    Longitude 3.20914
  ]
  edge [
    source 0
    target 1
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 5
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 27
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 24
  ]
  edge [
    source 2
    target 3
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 21
  ]
  edge [
    source 3
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 15
  ]
  edge [
    source 8
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 24
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 16
    target 24
  ]
  edge [
    source 17
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 17
    target 27
  ]
  edge [
    source 18
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 26
  ]
  edge [
    source 18
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 23
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 25
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

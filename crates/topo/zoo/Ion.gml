Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Ion"
  directed 0
  node [
    id 0
    label "Ion PoP 0"
    Latitude 33.58473
    Longitude -86.54321
  ]
  node [
    id 1
    label "Ion PoP 1"
    Latitude 39.34798
    Longitude -116.13188
  ]
  node [
    id 2
    label "Ion PoP 2"
    Latitude 32.45651
    Longitude -98.18934
  ]
  node [
    id 3
    label "Ion PoP 3"
    Latitude 44.38568
    Longitude -101.6241
  ]
  node [
    id 4
    label "Ion PoP 4"
    Latitude 43.65851
    Longitude -76.10072
  ]
  node [
    id 5
    label "Ion PoP 5"
    Latitude 32.71687
    Longitude -88.56936
  ]
  node [
    id 6
    label "Ion PoP 6"
    Latitude 34.70045
    Longitude -92.28369
  ]
  node [
    id 7
    label "Ion PoP 7"
    Latitude 40.9333
    Longitude -77.13827
  ]
  node [
    id 8
    label "Ion PoP 8"
    Latitude 43.31351
    Longitude -112.00235
  ]
  node [
    id 9
    label "Ion PoP 9"
    Latitude 43.1276
    Longitude -80.38787
  ]
  node [
    id 10
    label "Ion PoP 10"
    Latitude 35.13679
    Longitude -116.58956
  ]
  node [
    id 11
    label "Ion PoP 11"
    Latitude 33.67381
    Longitude -90.42463
  ]
  node [
    id 12
    label "Ion PoP 12"
    Latitude 32.54464
    Longitude -94.56918
  ]
  node [
    id 13
    label "Ion PoP 13"
    Latitude 45.25675
    Longitude -90.4559
  ]
  node [
    id 14
    label "Ion PoP 14"
    Latitude 41.01746
    Longitude -76.23057
  ]
  node [
    id 15
    label "Ion PoP 15"
    Latitude 37.23107
    Longitude -115.47053
  ]
  node [
    id 16
    label "Ion PoP 16"
    Latitude 40.66628
    Longitude -89.47951
  ]
  node [
    id 17
    label "Ion PoP 17"
    Latitude 35.97361
    Longitude -101.67459
  ]
  node [
    id 18
    label "Ion PoP 18"
    Latitude 35.56353
    Longitude -85.68487
  ]
  node [
    id 19
    label "Ion PoP 19"
    Latitude 34.77407
    Longitude -109.49339
  ]
  node [
    id 20
    label "Ion PoP 20"
    Latitude 40.32162
    Longitude -121.96503
  ]
  node [
    id 21
    label "Ion PoP 21"
    Latitude 34.48205
    Longitude -110.936
  ]
  node [
    id 22
    label "Ion PoP 22"
    Latitude 34.83972
    Longitude -83.60469
  ]
  node [
    id 23
    label "Ion PoP 23"
    Latitude 34.91489
    Longitude -89.54522
  ]
  node [
    id 24
    label "Ion PoP 24"
    Latitude 41.97985
    Longitude -88.11255
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 4
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 9
  ]
  edge [
    source 0
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 21
  ]
  edge [
    source 0
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 18
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 7
  ]
  edge [
    source 3
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 19
  ]
  edge [
    source 3
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 5
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 15
  ]
  edge [
    source 7
    target 8
  ]
  edge [
    source 8
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 13
  ]
  edge [
    source 9
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 21
  ]
  edge [
    source 13
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 22
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 23
    target 24
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Psinet"
  directed 0
  node [
    id 0
    label "Psinet PoP 0"
    Latitude 39.79721
    Longitude -110.85688
  ]
  node [
    id 1
    label "Psinet PoP 1"
    Latitude 43.58071
    Longitude -111.70645
  ]
  node [
    id 2
    label "Psinet PoP 2"
    Latitude 34.29208
    Longitude -80.80566
  ]
  node [
    id 3
    label "Psinet PoP 3"
    Latitude 32.7827
    Longitude -92.31358
  ]
  node [
    id 4
    label "Psinet PoP 4"
    Latitude 35.96103
    Longitude -102.431
  ]
  node [
    id 5
    label "Psinet PoP 5"
    Latitude 37.78378
    Longitude -83.11414
  ]
  node [
    id 6
    label "Psinet PoP 6"
    Latitude 34.62855
    Longitude -109.16826
  ]
  node [
    id 7
    label "Psinet PoP 7"
    Latitude 43.55159
    Longitude -110.16086
  ]
  node [
    id 8
    label "Psinet PoP 8"
    Latitude 40.84767
    Longitude -112.63159
  ]
  node [
    id 9
    label "Psinet PoP 9"
    Latitude 38.25733
    Longitude -95.0764
  ]
  node [
    id 10
    label "Psinet PoP 10"
    Latitude 46.20084
    Longitude -119.00434
  ]
  node [
    id 11
    label "Psinet PoP 11"
    Latitude 43.24513
    Longitude -78.19443
  ]
  node [
    id 12
    label "Psinet PoP 12"
    Latitude 42.21451
    Longitude -83.01162
  ]
  node [
    id 13
    label "Psinet PoP 13"
    Latitude 36.70065
    Longitude -78.55189
  ]
  node [
    id 14
    label "Psinet PoP 14"
    Latitude 43.41755
    Longitude -91.77344
  ]
  node [
    id 15
    label "Psinet PoP 15"
    Latitude 35.82198
    Longitude -88.58239
  ]
  node [
    id 16
    label "Psinet PoP 16"
    Latitude 36.33413
    Longitude -116.32337
  ]
  node [
    id 17
    label "Psinet PoP 17"
    Latitude 32.59043
    Longitude -107.27906
  ]
  node [
    id 18
    label "Psinet PoP 18"
    Latitude 35.76318
    Longitude -81.63118
  ]
  node [
    id 19
    label "Psinet PoP 19"
    Latitude 38.33364
    Longitude -112.41657
  ]
  node [
    id 20
    label "Psinet PoP 20"
    Latitude 46.2688
    Longitude -75.45732
  ]
  node [
    id 21
    label "Psinet PoP 21"
    Latitude 33.38923
    Longitude -75.31459
  ]
  node [
    id 22
    label "Psinet PoP 22"
    Latitude 37.99401
    Longitude -95.00046
  ]
  node [
    id 23
    label "Psinet PoP 23"
    Latitude 38.36861
    Longitude -98.81707
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 4
  ]
  edge [
    source 0
    target 8
  ]
  edge [
    source 0
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 1
    target 11
  ]
  edge [
    source 1
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 18
  ]
  edge [
    source 2
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 7
  ]
  edge [
    source 3
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 5
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
  ]
  edge [
    source 8
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 11
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 13
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 15
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 22
    target 23
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

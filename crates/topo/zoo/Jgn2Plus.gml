Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Jgn2Plus"
  directed 0
  node [
    id 0
    label "Jgn2Plus PoP 0"
    Latitude 33.62692
    Longitude 141.52238
  ]
  node [
    id 1
    label "Jgn2Plus PoP 1"
    Latitude 33.13703
    Longitude 143.70089
  ]
  node [
    id 2
    label "Jgn2Plus PoP 2"
    Latitude 35.6955
    Longitude 136.23344
  ]
  node [
    id 3
    label "Jgn2Plus PoP 3"
    Latitude 32.47138
    Longitude 141.8755
  ]
  node [
    id 4
    label "Jgn2Plus PoP 4"
    Latitude 35.94316
    Longitude 139.59252
  ]
  node [
    id 5
    label "Jgn2Plus PoP 5"
    Latitude 34.55453
    Longitude 135.98071
  ]
  node [
    id 6
    label "Jgn2Plus PoP 6"
    Latitude 42.88847
    Longitude 141.33797
  ]
  node [
    id 7
    label "Jgn2Plus PoP 7"
    Latitude 33.13711
    Longitude 135.59591
  ]
  node [
    id 8
    label "Jgn2Plus PoP 8"
    Latitude 42.8306
    Longitude 137.55849
  ]
  node [
    id 9
    label "Jgn2Plus PoP 9"
    Latitude 42.00583
    Longitude 131.41536
  ]
  node [
    id 10
    label "Jgn2Plus PoP 10"
    Latitude 33.92465
    Longitude 130.2922
  ]
  node [
    id 11
    label "Jgn2Plus PoP 11"
    Latitude 37.63012
    Longitude 135.06419
  ]
  node [
    id 12
    label "Jgn2Plus PoP 12"
    Latitude 41.00906
    Longitude 138.00295
  ]
  node [
    id 13
    label "Jgn2Plus PoP 13"
    Latitude 37.51398
    Longitude 140.7048
  ]
  node [
    id 14
    label "Jgn2Plus PoP 14"
    Latitude 38.47867
    Longitude 141.86006
  ]
  node [
    id 15
    label "Jgn2Plus PoP 15"
    Latitude 35.5189
    Longitude 135.36992
  ]
  node [
    id 16
    label "Jgn2Plus PoP 16"
    Latitude 42.01203
    Longitude 131.69666
  ]
  node [
    id 17
    label "Jgn2Plus PoP 17"
    Latitude 36.02781
    Longitude 139.25886
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 16
  ]
  edge [
    source 1
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 2
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 15
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 14
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 16
  ]
  edge [
    source 9
    target 10
  ]
  edge [
    source 9
    target 14
  ]
  edge [
    source 9
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 12
    target 13
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

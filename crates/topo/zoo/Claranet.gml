Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Claranet"
  directed 0
  node [
    id 0
    label "Claranet PoP 0"
    Latitude 47.15147
    Longitude 23.02301
  ]
  node [
    id 1
    label "Claranet PoP 1"
    Latitude 56.40177
    Longitude 17.53124
  ]
  node [
    id 2
    label "Claranet PoP 2"
    Latitude 45.128
    Longitude 6.56445
  ]
  node [
    id 3
    label "Claranet PoP 3"
    Latitude 41.84154
    Longitude 17.38969
  ]
  node [
    id 4
    label "Claranet PoP 4"
    Latitude 38.51732
    Longitude 9.37988
  ]
  node [
    id 5
    label "Claranet PoP 5"
    Latitude 44.66526
    Longitude -0.31636
  ]
  node [
    id 6
    label "Claranet PoP 6"
    Latitude 59.63261
    Longitude -2.53577
  ]
  node [
    id 7
    label "Claranet PoP 7"
    Latitude 46.48821
    Longitude 15.52042
  ]
  node [
    id 8
    label "Claranet PoP 8"
    Latitude 42.91294
    Longitude 6.8047
  ]
  node [
    id 9
    label "Claranet PoP 9"
    Latitude 45.15172
    Longitude -1.01654
  ]
  node [
    id 10
    label "Claranet PoP 10"
    Latitude 43.1512
    Longitude -6.56097
  ]
  node [
    id 11
    label "Claranet PoP 11"
    Latitude 42.28618
    Longitude 0.44255
  ]
  node [
    id 12
    label "Claranet PoP 12"
    Latitude 39.78986
    Longitude 19.12053
  ]
  node [
    id 13
    label "Claranet PoP 13"
    Latitude 42.46689
    Longitude -3.25828
  ]
  node [
    id 14
    label "Claranet PoP 14"
    Latitude 39.0724
    Longitude -4.6738
  ]
  edge [
    source 0
    target 1
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 7
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

Creator "Topology Zoo. GML rendition of the Abilene backbone."
graph [
  Network "Abilene"
  directed 0
  node [
    id 0
    label "New York"
    Latitude 40.71427
    Longitude -74.00597
  ]
  node [
    id 1
    label "Chicago"
    Latitude 41.85003
    Longitude -87.65005
  ]
  node [
    id 2
    label "Washington DC"
    Latitude 38.89511
    Longitude -77.03637
  ]
  node [
    id 3
    label "Seattle"
    Latitude 47.60621
    Longitude -122.33207
  ]
  node [
    id 4
    label "Sunnyvale"
    Latitude 37.36883
    Longitude -122.03635
  ]
  node [
    id 5
    label "Los Angeles"
    Latitude 34.05223
    Longitude -118.24368
  ]
  node [
    id 6
    label "Denver"
    Latitude 39.73915
    Longitude -104.9847
  ]
  node [
    id 7
    label "Kansas City"
    Latitude 39.09973
    Longitude -94.57857
  ]
  node [
    id 8
    label "Houston"
    Latitude 29.76328
    Longitude -95.36327
  ]
  node [
    id 9
    label "Atlanta"
    Latitude 33.749
    Longitude -84.38798
  ]
  node [
    id 10
    label "Indianapolis"
    Latitude 39.76838
    Longitude -86.15804
  ]
  edge [
    source 0
    target 1
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Twaren"
  directed 0
  node [
    id 0
    label "Twaren PoP 0"
    Latitude 23.2302
    Longitude 121.84312
  ]
  node [
    id 1
    label "Twaren PoP 1"
    Latitude 24.25259
    Longitude 120.43067
  ]
  node [
    id 2
    label "Twaren PoP 2"
    Latitude 23.96866
    Longitude 120.80829
  ]
  node [
    id 3
    label "Twaren PoP 3"
    Latitude 22.40603
    Longitude 121.73309
  ]
  node [
    id 4
    label "Twaren PoP 4"
    Latitude 24.07475
    Longitude 120.29411
  ]
  node [
    id 5
    label "Twaren PoP 5"
    Latitude 22.22487
    Longitude 121.79165
  ]
  node [
    id 6
    label "Twaren PoP 6"
    Latitude 23.38464
    Longitude 120.47316
  ]
  node [
    id 7
    label "Twaren PoP 7"
    Latitude 22.8849
    Longitude 120.41614
  ]
  node [
    id 8
    label "Twaren PoP 8"
    Latitude 23.32401
    Longitude 121.42911
  ]
  node [
    id 9
    label "Twaren PoP 9"
    Latitude 24.46305
    Longitude 121.25431
  ]
  node [
    id 10
    label "Twaren PoP 10"
    Latitude 24.57321
    Longitude 121.22572
  ]
  node [
    id 11
    label "Twaren PoP 11"
    Latitude 22.03792
    Longitude 120.86408
  ]
  node [
    id 12
    label "Twaren PoP 12"
    Latitude 24.98263
    Longitude 121.92732
  ]
  node [
    id 13
    label "Twaren PoP 13"
    Latitude 22.46635
    Longitude 121.16024
  ]
  node [
    id 14
    label "Twaren PoP 14"
    Latitude 22.32228
    Longitude 120.21742
  ]
  node [
    id 15
    label "Twaren PoP 15"
    Latitude 23.03742
    Longitude 121.27213
  ]
  node [
    id 16
    label "Twaren PoP 16"
    Latitude 24.43774
    Longitude 121.40161
  ]
  node [
    id 17
    label "Twaren PoP 17"
    Latitude 24.88071
    Longitude 121.38358
  ]
  node [
    id 18
    label "Twaren PoP 18"
    Latitude 23.63565
    Longitude 121.1729
  ]
  node [
    id 19
    label "Twaren PoP 19"
    Latitude 23.04788
    Longitude 121.8408
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 3
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 1
    target 14
  ]
  edge [
    source 1
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 6
  ]
  edge [
    source 3
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 9
  ]
  edge [
    source 6
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 7
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 10
  ]
  edge [
    source 9
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 14
  ]
  edge [
    source 10
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 11
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 18
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 17
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 19
  ]
]

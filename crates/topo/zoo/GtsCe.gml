Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "GtsCe"
  directed 0
  node [
    id 0
    label "GtsCe PoP 0"
    Latitude 38.57233
    Longitude 11.97348
  ]
  node [
    id 1
    label "GtsCe PoP 1"
    Latitude 46.80467
    Longitude -2.97433
  ]
  node [
    id 2
    label "GtsCe PoP 2"
    Latitude 47.89934
    Longitude -8.29781
  ]
  node [
    id 3
    label "GtsCe PoP 3"
    Latitude 39.61435
    Longitude 16.66693
  ]
  node [
    id 4
    label "GtsCe PoP 4"
    Latitude 56.89857
    Longitude 7.72375
  ]
  node [
    id 5
    label "GtsCe PoP 5"
    Latitude 40.53863
    Longitude -6.02185
  ]
  node [
    id 6
    label "GtsCe PoP 6"
    Latitude 44.83444
    Longitude 11.57298
  ]
  node [
    id 7
    label "GtsCe PoP 7"
    Latitude 52.63204
    Longitude 8.36295
  ]
  node [
    id 8
    label "GtsCe PoP 8"
    Latitude 50.27044
    Longitude -7.26314
  ]
  node [
    id 9
    label "GtsCe PoP 9"
    Latitude 43.87459
    Longitude -4.65844
  ]
  node [
    id 10
    label "GtsCe PoP 10"
    Latitude 49.60666
    Longitude 7.20238
  ]
  node [
    id 11
    label "GtsCe PoP 11"
    Latitude 58.62551
    Longitude 6.06869
  ]
  node [
    id 12
    label "GtsCe PoP 12"
    Latitude 38.80419
    Longitude 10.85539
  ]
  node [
    id 13
    label "GtsCe PoP 13"
    Latitude 55.83617
    Longitude 17.85352
  ]
  node [
    id 14
    label "GtsCe PoP 14"
    Latitude 56.50985
    Longitude 17.76433
  ]
  node [
    id 15
    label "GtsCe PoP 15"
    Latitude 44.58025
    Longitude 6.2672
  ]
  node [
    id 16
    label "GtsCe PoP 16"
    Latitude 38.34235
    Longitude 20.97574
  ]
  node [
    id 17
    label "GtsCe PoP 17"
    Latitude 52.68366
    Longitude 8.51832
  ]
  node [
    id 18
    label "GtsCe PoP 18"
    Latitude 59.73862
    Longitude 21.33896
  ]
  node [
    id 19
    label "GtsCe PoP 19"
    Latitude 53.9616
    Longitude 15.56132
  ]
  node [
    id 20
    label "GtsCe PoP 20"
    Latitude 53.86398
    Longitude 2.74702
  ]
  node [
    id 21
    label "GtsCe PoP 21"
    Latitude 50.96232
    Longitude -2.67734
  ]
  node [
    id 22
    label "GtsCe PoP 22"
    Latitude 53.23932
    Longitude -5.37654
  ]
  node [
    id 23
    label "GtsCe PoP 23"
    Latitude 45.58386
    Longitude 13.20947
  ]
  node [
    id 24
    label "GtsCe PoP 24"
    Latitude 48.46389
    Longitude 20.95382
  ]
  node [
    id 25
    label "GtsCe PoP 25"
    Latitude 50.1911
    Longitude 12.64389
  ]
  node [
    id 26
    label "GtsCe PoP 26"
    Latitude 54.93806
    Longitude 24.93162
  ]
  node [
    id 27
    label "GtsCe PoP 27"
    Latitude 58.57603
    Longitude -1.10516
  ]
  edge [
    source 0
    target 1
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 3
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 1
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 2
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 6
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 11
  ]
  edge [
    source 3
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 19
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 12
  ]
  edge [
    source 9
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 12
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 13
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 14
    target 18
  ]
  edge [
    source 14
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 16
  ]
  edge [
    source 15
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 23
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 16
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 17
    target 18
  ]
  edge [
    source 18
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 19
    target 25
  ]
  edge [
    source 20
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 24
    target 27
  ]
  edge [
    source 25
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

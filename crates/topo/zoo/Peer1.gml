Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Peer1"
  directed 0
  node [
    id 0
    label "Peer1 PoP 0"
    Latitude 51.27111
    Longitude -101.2959
  ]
  node [
    id 1
    label "Peer1 PoP 1"
    Latitude 32.71368
    Longitude -81.1365
  ]
  node [
    id 2
    label "Peer1 PoP 2"
    Latitude 44.27436
    Longitude -89.90444
  ]
  node [
    id 3
    label "Peer1 PoP 3"
    Latitude 33.13164
    Longitude -70.86778
  ]
  node [
    id 4
    label "Peer1 PoP 4"
    Latitude 41.43714
    Longitude -104.11814
  ]
  node [
    id 5
    label "Peer1 PoP 5"
    Latitude 48.24408
    Longitude -85.99246
  ]
  node [
    id 6
    label "Peer1 PoP 6"
    Latitude 44.36011
    Longitude -72.20845
  ]
  node [
    id 7
    label "Peer1 PoP 7"
    Latitude 46.56768
    Longitude -109.65078
  ]
  node [
    id 8
    label "Peer1 PoP 8"
    Latitude 42.50604
    Longitude -118.91906
  ]
  node [
    id 9
    label "Peer1 PoP 9"
    Latitude 36.53685
    Longitude -121.42567
  ]
  node [
    id 10
    label "Peer1 PoP 10"
    Latitude 50.5474
    Longitude -74.76217
  ]
  node [
    id 11
    label "Peer1 PoP 11"
    Latitude 46.07609
    Longitude -120.56339
  ]
  node [
    id 12
    label "Peer1 PoP 12"
    Latitude 47.33922
    Longitude -80.31495
  ]
  node [
    id 13
    label "Peer1 PoP 13"
    Latitude 49.49423
    Longitude -113.62868
  ]
  node [
    id 14
    label "Peer1 PoP 14"
    Latitude 30.66536
    Longitude -84.1978
  ]
  node [
    id 15
    label "Peer1 PoP 15"
    Latitude 47.73989
    Longitude -105.01712
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 7
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 12
  ]
  edge [
    source 2
    target 3
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 12
  ]
  edge [
    source 4
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 15
  ]
  edge [
    source 5
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 10
  ]
  edge [
    source 9
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 11
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 14
    target 15
  ]
]

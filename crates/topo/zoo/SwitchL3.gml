Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "SwitchL3"
  directed 0
  node [
    id 0
    label "SwitchL3 PoP 0"
    Latitude 43.7677
    Longitude 13.11105
  ]
  node [
    id 1
    label "SwitchL3 PoP 1"
    Latitude 49.58618
    Longitude -2.2753
  ]
  node [
    id 2
    label "SwitchL3 PoP 2"
    Latitude 48.85498
    Longitude 7.26309
  ]
  node [
    id 3
    label "SwitchL3 PoP 3"
    Latitude 52.99862
    Longitude -5.61633
  ]
  node [
    id 4
    label "SwitchL3 PoP 4"
    Latitude 47.08997
    Longitude -7.45355
  ]
  node [
    id 5
    label "SwitchL3 PoP 5"
    Latitude 40.86848
    Longitude 17.10246
  ]
  node [
    id 6
    label "SwitchL3 PoP 6"
    Latitude 49.59415
    Longitude 9.27568
  ]
  node [
    id 7
    label "SwitchL3 PoP 7"
    Latitude 52.76061
    Longitude 15.08728
  ]
  node [
    id 8
    label "SwitchL3 PoP 8"
    Latitude 48.2135
    Longitude 6.83361
  ]
  node [
    id 9
    label "SwitchL3 PoP 9"
    Latitude 38.01506
    Longitude 21.49177
  ]
  node [
    id 10
    label "SwitchL3 PoP 10"
    Latitude 44.22624
    Longitude 10.21283
  ]
  node [
    id 11
    label "SwitchL3 PoP 11"
    Latitude 57.53461
    Longitude 2.48906
  ]
  node [
    id 12
    label "SwitchL3 PoP 12"
    Latitude 56.38845
    Longitude -3.25894
  ]
  node [
    id 13
    label "SwitchL3 PoP 13"
    Latitude 42.5003
    Longitude 4.7917
  ]
  node [
    id 14
    label "SwitchL3 PoP 14"
    Latitude 58.73712
    Longitude -8.12533
  ]
  node [
    id 15
    label "SwitchL3 PoP 15"
    Latitude 53.46407
    Longitude -5.46599
  ]
  node [
    id 16
    label "SwitchL3 PoP 16"
    Latitude 52.41043
    Longitude -1.81494
  ]
  node [
    id 17
    label "SwitchL3 PoP 17"
    Latitude 42.54254
    Longitude -0.1208
  ]
  node [
    id 18
    label "SwitchL3 PoP 18"
    Latitude 44.05373
    Longitude -6.36883
  ]
  node [
    id 19
    label "SwitchL3 PoP 19"
    Latitude 50.14341
    Longitude 9.62041
  ]
  node [
    id 20
    label "SwitchL3 PoP 20"
    Latitude 48.38648
    Longitude -8.65579
  ]
  node [
    id 21
    label "SwitchL3 PoP 21"
    Latitude 40.84376
    Longitude 21.44973
  ]
  node [
    id 22
    label "SwitchL3 PoP 22"
    Latitude 51.08322
    Longitude 23.7528
  ]
  node [
    id 23
    label "SwitchL3 PoP 23"
    Latitude 56.95791
    Longitude 16.65692
  ]
  node [
    id 24
    label "SwitchL3 PoP 24"
    Latitude 42.40915
    Longitude -1.16779
  ]
  node [
    id 25
    label "SwitchL3 PoP 25"
    Latitude 52.61927
    Longitude 21.26046
  ]
  node [
    id 26
    label "SwitchL3 PoP 26"
    Latitude 49.76201
    Longitude -2.5169
  ]
  node [
    id 27
    label "SwitchL3 PoP 27"
    Latitude 38.72837
    Longitude 19.55527
  ]
  edge [
    source 0
    target 1
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 24
  ]
  edge [
    source 0
    target 27
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 27
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 10
  ]
  edge [
    source 7
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 11
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 14
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 17
  ]
  edge [
    source 15
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 20
  ]
  edge [
    source 18
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 23
  ]
  edge [
    source 19
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 19
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 23
  ]
  edge [
    source 21
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 23
    target 24
  ]
  edge [
    source 24
    target 25
  ]
  edge [
    source 24
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "HiberniaGlobal"
  directed 0
  node [
    id 0
    label "HiberniaGlobal PoP 0"
    Latitude 11.07193
    Longitude -74.75039
  ]
  node [
    id 1
    label "HiberniaGlobal PoP 1"
    Latitude -6.18023
    Longitude 9.46826
  ]
  node [
    id 2
    label "HiberniaGlobal PoP 2"
    Latitude 51.29719
    Longitude 62.44131
  ]
  node [
    id 3
    label "HiberniaGlobal PoP 3"
    Latitude -25.71333
    Longitude 70.17337
  ]
  node [
    id 4
    label "HiberniaGlobal PoP 4"
    Latitude 38.95746
    Longitude -110.2301
  ]
  node [
    id 5
    label "HiberniaGlobal PoP 5"
    Latitude -19.09377
    Longitude 129.70525
  ]
  node [
    id 6
    label "HiberniaGlobal PoP 6"
    Latitude 53.37368
    Longitude -51.46794
  ]
  node [
    id 7
    label "HiberniaGlobal PoP 7"
    Latitude -29.13951
    Longitude 35.44819
  ]
  node [
    id 8
    label "HiberniaGlobal PoP 8"
    Latitude -18.34303
    Longitude 15.07964
  ]
  node [
    id 9
    label "HiberniaGlobal PoP 9"
    Latitude 32.20573
    Longitude -30.55016
  ]
  node [
    id 10
    label "HiberniaGlobal PoP 10"
    Latitude 3.49932
    Longitude -21.33767
  ]
  node [
    id 11
    label "HiberniaGlobal PoP 11"
    Latitude 29.0108
    Longitude -84.65795
  ]
  node [
    id 12
    label "HiberniaGlobal PoP 12"
    Latitude -24.11799
    Longitude -93.47216
  ]
  node [
    id 13
    label "HiberniaGlobal PoP 13"
    Latitude -21.70393
    Longitude -49.95504
  ]
  node [
    id 14
    label "HiberniaGlobal PoP 14"
    Latitude 16.22935
    Longitude -64.78098
  ]
  node [
    id 15
    label "HiberniaGlobal PoP 15"
    Latitude -22.61495
    Longitude 52.79398
  ]
  node [
    id 16
    label "HiberniaGlobal PoP 16"
    Latitude 18.9167
    Longitude -40.39572
  ]
  node [
    id 17
    label "HiberniaGlobal PoP 17"
    Latitude 10.8357
    Longitude -43.36631
  ]
  node [
    id 18
    label "HiberniaGlobal PoP 18"
    Latitude 44.86391
    Longitude 89.26068
  ]
  node [
    id 19
    label "HiberniaGlobal PoP 19"
    Latitude 32.97716
    Longitude -72.10362
  ]
  node [
    id 20
    label "HiberniaGlobal PoP 20"
    Latitude 0.6526
    Longitude -93.14363
  ]
  node [
    id 21
    label "HiberniaGlobal PoP 21"
    Latitude 7.23796
    Longitude 79.61748
  ]
  node [
    id 22
    label "HiberniaGlobal PoP 22"
    Latitude 26.8486
    Longitude -69.14153
  ]
  node [
    id 23
    label "HiberniaGlobal PoP 23"
    Latitude -29.84821
    Longitude -42.12565
  ]
  node [
    id 24
    label "HiberniaGlobal PoP 24"
    Latitude 26.91754
    Longitude 117.2216
  ]
  node [
    id 25
    label "HiberniaGlobal PoP 25"
    Latitude 50.52075
    Longitude 96.80748
  ]
  node [
    id 26
    label "HiberniaGlobal PoP 26"
    Latitude 43.64615
    Longitude 23.27548
  ]
  node [
    id 27
    label "HiberniaGlobal PoP 27"
    Latitude -9.14386
    Longitude 36.19121
  ]
  edge [
    source 0
    target 1
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 24
  ]
  edge [
    source 3
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 27
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 12
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 7
    target 8
  ]
  edge [
    source 7
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 11
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 18
  ]
  edge [
    source 12
    target 21
  ]
  edge [
    source 13
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 24
  ]
  edge [
    source 16
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 17
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 27
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 20
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
  ]
]

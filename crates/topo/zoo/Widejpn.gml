Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Widejpn"
  directed 0
  node [
    id 0
    label "Widejpn PoP 0"
    Latitude 38.93286
    Longitude 132.45292
  ]
  node [
    id 1
    label "Widejpn PoP 1"
    Latitude 38.16346
    Longitude 141.00241
  ]
  node [
    id 2
    label "Widejpn PoP 2"
    Latitude 34.61126
    Longitude 134.36335
  ]
  node [
    id 3
    label "Widejpn PoP 3"
    Latitude 41.44711
    Longitude 139.16008
  ]
  node [
    id 4
    label "Widejpn PoP 4"
    Latitude 38.45199
    Longitude 142.37571
  ]
  node [
    id 5
    label "Widejpn PoP 5"
    Latitude 36.17687
    Longitude 138.17004
  ]
  node [
    id 6
    label "Widejpn PoP 6"
    Latitude 35.38268
    Longitude 132.41397
  ]
  node [
    id 7
    label "Widejpn PoP 7"
    Latitude 36.51906
    Longitude 142.9924
  ]
  node [
    id 8
    label "Widejpn PoP 8"
    Latitude 37.80921
    Longitude 140.07474
  ]
  node [
    id 9
    label "Widejpn PoP 9"
    Latitude 38.88161
    Longitude 130.77014
  ]
  node [
    id 10
    label "Widejpn PoP 10"
    Latitude 36.55722
    Longitude 139.53631
  ]
  node [
    id 11
    label "Widejpn PoP 11"
    Latitude 33.74135
    Longitude 130.04263
  ]
  node [
    id 12
    label "Widejpn PoP 12"
    Latitude 36.18413
    Longitude 142.8497
  ]
  node [
    id 13
    label "Widejpn PoP 13"
    Latitude 35.69907
    Longitude 141.6217
  ]
  node [
    id 14
    label "Widejpn PoP 14"
    Latitude 37.17451
    Longitude 141.802
  ]
  node [
    id 15
    label "Widejpn PoP 15"
    Latitude 36.11802
    Longitude 131.82219
  ]
  node [
    id 16
    label "Widejpn PoP 16"
    Latitude 41.96414
    Longitude 132.35617
  ]
  node [
    id 17
    label "Widejpn PoP 17"
    Latitude 37.55078
    Longitude 131.94027
  ]
  node [
    id 18
    label "Widejpn PoP 18"
    Latitude 41.35965
    Longitude 133.70063
  ]
  node [
    id 19
    label "Widejpn PoP 19"
    Latitude 40.83713
    Longitude 143.44179
  ]
  node [
    id 20
    label "Widejpn PoP 20"
    Latitude 41.29947
    Longitude 136.91156
  ]
  node [
    id 21
    label "Widejpn PoP 21"
    Latitude 39.47953
    Longitude 141.80544
  ]
  node [
    id 22
    label "Widejpn PoP 22"
    Latitude 39.73775
    Longitude 141.18639
  ]
  node [
    id 23
    label "Widejpn PoP 23"
    Latitude 37.5586
    Longitude 136.7456
  ]
  node [
    id 24
    label "Widejpn PoP 24"
    Latitude 41.17559
    Longitude 138.65885
  ]
  node [
    id 25
    label "Widejpn PoP 25"
    Latitude 33.53272
    Longitude 130.61605
  ]
  node [
    id 26
    label "Widejpn PoP 26"
    Latitude 37.58824
    Longitude 134.43037
  ]
  node [
    id 27
    label "Widejpn PoP 27"
    Latitude 35.44841
    Longitude 143.56332
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 2
  ]
  edge [
    source 0
    target 3
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 5
  ]
  edge [
    source 0
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 10
  ]
  edge [
    source 9
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 10
    target 13
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 12
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 17
  ]
  edge [
    source 13
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 13
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 14
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 20
  ]
  edge [
    source 18
    target 23
  ]
  edge [
    source 19
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 21
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 24
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

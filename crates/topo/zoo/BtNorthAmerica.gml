Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "BtNorthAmerica"
  directed 0
  node [
    id 0
    label "BtNorthAmerica PoP 0"
    Latitude 49.15142
    Longitude -114.41387
  ]
  node [
    id 1
    label "BtNorthAmerica PoP 1"
    Latitude 39.83973
    Longitude -77.24772
  ]
  node [
    id 2
    label "BtNorthAmerica PoP 2"
    Latitude 37.68818
    Longitude -117.5541
  ]
  node [
    id 3
    label "BtNorthAmerica PoP 3"
    Latitude 37.20184
    Longitude -94.59058
  ]
  node [
    id 4
    label "BtNorthAmerica PoP 4"
    Latitude 51.87723
    Longitude -72.19186
  ]
  node [
    id 5
    label "BtNorthAmerica PoP 5"
    Latitude 31.88675
    Longitude -97.89336
  ]
  node [
    id 6
    label "BtNorthAmerica PoP 6"
    Latitude 38.22212
    Longitude -84.29809
  ]
  node [
    id 7
    label "BtNorthAmerica PoP 7"
    Latitude 51.65941
    Longitude -97.55588
  ]
  node [
    id 8
    label "BtNorthAmerica PoP 8"
    Latitude 34.70864
    Longitude -97.78831
  ]
  node [
    id 9
    label "BtNorthAmerica PoP 9"
    Latitude 35.19281
    Longitude -73.65085
  ]
  node [
    id 10
    label "BtNorthAmerica PoP 10"
    Latitude 35.79814
    Longitude -99.1889
  ]
  node [
    id 11
    label "BtNorthAmerica PoP 11"
    Latitude 47.25744
    Longitude -106.01133
  ]
  node [
    id 12
    label "BtNorthAmerica PoP 12"
    Latitude 35.94268
    Longitude -87.54362
  ]
  node [
    id 13
    label "BtNorthAmerica PoP 13"
    Latitude 42.76168
    Longitude -107.34981
  ]
  node [
    id 14
    label "BtNorthAmerica PoP 14"
    Latitude 46.21339
    Longitude -105.44027
  ]
  node [
    id 15
    label "BtNorthAmerica PoP 15"
    Latitude 43.03059
    Longitude -105.2091
  ]
  node [
    id 16
    label "BtNorthAmerica PoP 16"
    Latitude 47.62243
    Longitude -112.73243
  ]
  node [
    id 17
    label "BtNorthAmerica PoP 17"
    Latitude 43.68182
    Longitude -102.10275
  ]
  node [
    id 18
    label "BtNorthAmerica PoP 18"
    Latitude 46.37719
    Longitude -91.63966
  ]
  node [
    id 19
    label "BtNorthAmerica PoP 19"
    Latitude 42.37027
    Longitude -118.7935
  ]
  node [
    id 20
    label "BtNorthAmerica PoP 20"
    Latitude 32.69265
    Longitude -86.67502
  ]
  node [
    id 21
    label "BtNorthAmerica PoP 21"
    Latitude 41.22954
    Longitude -74.23614
  ]
  node [
    id 22
    label "BtNorthAmerica PoP 22"
    Latitude 41.75799
    Longitude -119.52188
  ]
  node [
    id 23
    label "BtNorthAmerica PoP 23"
    Latitude 43.45556
    Longitude -96.95401
  ]
  node [
    id 24
    label "BtNorthAmerica PoP 24"
    Latitude 33.22421
    Longitude -108.93062
  ]
  node [
    id 25
    label "BtNorthAmerica PoP 25"
    Latitude 30.7829
    Longitude -70.27855
  ]
  node [
    id 26
    label "BtNorthAmerica PoP 26"
    Latitude 31.39711
    Longitude -117.9761
  ]
  node [
    id 27
    label "BtNorthAmerica PoP 27"
    Latitude 46.54406
    Longitude -83.01991
  ]
  edge [
    source 0
    target 1
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 4
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 12
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 5
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 10
  ]
  edge [
    source 9
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 21
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 13
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 14
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 16
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 20
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 25
  ]
  edge [
    source 22
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 22
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

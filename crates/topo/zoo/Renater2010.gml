Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Renater2010"
  directed 0
  node [
    id 0
    label "Renater2010 PoP 0"
    Latitude 53.11814
    Longitude 16.1615
  ]
  node [
    id 1
    label "Renater2010 PoP 1"
    Latitude 51.27391
    Longitude 11.18912
  ]
  node [
    id 2
    label "Renater2010 PoP 2"
    Latitude 56.00397
    Longitude 11.05712
  ]
  node [
    id 3
    label "Renater2010 PoP 3"
    Latitude 46.24285
    Longitude -0.19566
  ]
  node [
    id 4
    label "Renater2010 PoP 4"
    Latitude 40.51342
    Longitude 19.12581
  ]
  node [
    id 5
    label "Renater2010 PoP 5"
    Latitude 52.16225
    Longitude 1.62683
  ]
  node [
    id 6
    label "Renater2010 PoP 6"
    Latitude 47.42655
    Longitude 10.92344
  ]
  node [
    id 7
    label "Renater2010 PoP 7"
    Latitude 39.89559
    Longitude 18.03388
  ]
  node [
    id 8
    label "Renater2010 PoP 8"
    Latitude 39.04579
    Longitude -8.68876
  ]
  node [
    id 9
    label "Renater2010 PoP 9"
    Latitude 48.04956
    Longitude 9.74748
  ]
  node [
    id 10
    label "Renater2010 PoP 10"
    Latitude 58.38479
    Longitude 15.08399
  ]
  node [
    id 11
    label "Renater2010 PoP 11"
    Latitude 49.52911
    Longitude 23.11769
  ]
  node [
    id 12
    label "Renater2010 PoP 12"
    Latitude 39.60319
    Longitude -8.75064
  ]
  node [
    id 13
    label "Renater2010 PoP 13"
    Latitude 46.63295
    Longitude 13.1079
  ]
  node [
    id 14
    label "Renater2010 PoP 14"
    Latitude 44.64631
    Longitude -2.4947
  ]
  node [
    id 15
    label "Renater2010 PoP 15"
    Latitude 44.02127
    Longitude 2.73844
  ]
  node [
    id 16
    label "Renater2010 PoP 16"
    Latitude 48.54091
    Longitude 10.05462
  ]
  node [
    id 17
    label "Renater2010 PoP 17"
    Latitude 39.7286
    Longitude 2.01761
  ]
  node [
    id 18
    label "Renater2010 PoP 18"
    Latitude 55.64493
    Longitude 15.38117
  ]
  node [
    id 19
    label "Renater2010 PoP 19"
    Latitude 58.44359
    Longitude 7.95944
  ]
  node [
    id 20
    label "Renater2010 PoP 20"
    Latitude 39.54136
    Longitude 5.38318
  ]
  node [
    id 21
    label "Renater2010 PoP 21"
    Latitude 58.49996
    Longitude 12.4886
  ]
  node [
    id 22
    label "Renater2010 PoP 22"
    Latitude 55.07591
    Longitude 11.58519
  ]
  node [
    id 23
    label "Renater2010 PoP 23"
    Latitude 45.32452
    Longitude -6.58653
  ]
  node [
    id 24
    label "Renater2010 PoP 24"
    Latitude 43.83158
    Longitude -1.9669
  ]
  node [
    id 25
    label "Renater2010 PoP 25"
    Latitude 51.25369
    Longitude 13.38866
  ]
  node [
    id 26
    label "Renater2010 PoP 26"
    Latitude 54.74169
    Longitude 22.80638
  ]
  node [
    id 27
    label "Renater2010 PoP 27"
    Latitude 41.54663
    Longitude -5.19352
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 3
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 2
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 14
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 12
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
  ]
  edge [
    source 8
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 10
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 15
  ]
  edge [
    source 12
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 17
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 19
  ]
  edge [
    source 18
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 20
    target 25
  ]
  edge [
    source 21
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 24
  ]
  edge [
    source 21
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 23
    target 24
  ]
  edge [
    source 24
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 24
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Ernet"
  directed 0
  node [
    id 0
    label "Ernet PoP 0"
    Latitude 16.06332
    Longitude 76.47482
  ]
  node [
    id 1
    label "Ernet PoP 1"
    Latitude 14.33562
    Longitude 79.42747
  ]
  node [
    id 2
    label "Ernet PoP 2"
    Latitude 23.28082
    Longitude 71.28629
  ]
  node [
    id 3
    label "Ernet PoP 3"
    Latitude 9.4387
    Longitude 70.85227
  ]
  node [
    id 4
    label "Ernet PoP 4"
    Latitude 29.03324
    Longitude 83.71818
  ]
  node [
    id 5
    label "Ernet PoP 5"
    Latitude 26.29515
    Longitude 74.65496
  ]
  node [
    id 6
    label "Ernet PoP 6"
    Latitude 13.93116
    Longitude 74.72076
  ]
  node [
    id 7
    label "Ernet PoP 7"
    Latitude 21.99081
    Longitude 82.01062
  ]
  node [
    id 8
    label "Ernet PoP 8"
    Latitude 11.60038
    Longitude 81.45131
  ]
  node [
    id 9
    label "Ernet PoP 9"
    Latitude 10.51423
    Longitude 73.67422
  ]
  node [
    id 10
    label "Ernet PoP 10"
    Latitude 24.67606
    Longitude 79.90313
  ]
  node [
    id 11
    label "Ernet PoP 11"
    Latitude 19.41849
    Longitude 70.01513
  ]
  node [
    id 12
    label "Ernet PoP 12"
    Latitude 10.61672
    Longitude 81.35313
  ]
  node [
    id 13
    label "Ernet PoP 13"
    Latitude 20.9712
    Longitude 86.48669
  ]
  node [
    id 14
    label "Ernet PoP 14"
    Latitude 18.81927
    Longitude 78.77029
  ]
  node [
    id 15
    label "Ernet PoP 15"
    Latitude 9.60504
    Longitude 78.88689
  ]
  node [
    id 16
    label "Ernet PoP 16"
    Latitude 29.12927
    Longitude 72.82106
  ]
  node [
    id 17
    label "Ernet PoP 17"
    Latitude 11.24156
    Longitude 70.23454
  ]
  node [
    id 18
    label "Ernet PoP 18"
    Latitude 15.23609
    Longitude 70.50771
  ]
  node [
    id 19
    label "Ernet PoP 19"
    Latitude 24.82802
    Longitude 78.16769
  ]
  node [
    id 20
    label "Ernet PoP 20"
    Latitude 17.47268
    Longitude 85.14517
  ]
  node [
    id 21
    label "Ernet PoP 21"
    Latitude 14.64232
    Longitude 76.37631
  ]
  node [
    id 22
    label "Ernet PoP 22"
    Latitude 24.82745
    Longitude 82.56235
  ]
  node [
    id 23
    label "Ernet PoP 23"
    Latitude 15.54405
    Longitude 85.48506
  ]
  node [
    id 24
    label "Ernet PoP 24"
    Latitude 10.78948
    Longitude 77.1534
  ]
  node [
    id 25
    label "Ernet PoP 25"
    Latitude 26.58708
    Longitude 79.99603
  ]
  node [
    id 26
    label "Ernet PoP 26"
    Latitude 17.89142
    Longitude 83.01785
  ]
  node [
    id 27
    label "Ernet PoP 27"
    Latitude 16.98079
    Longitude 84.2121
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 21
  ]
  edge [
    source 3
    target 22
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 18
  ]
  edge [
    source 6
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 24
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 11
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 24
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 13
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 21
    target 22
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Bellcanada"
  directed 0
  node [
    id 0
    label "Bellcanada PoP 0"
    Latitude 50.46608
    Longitude -87.20448
  ]
  node [
    id 1
    label "Bellcanada PoP 1"
    Latitude 46.57507
    Longitude -107.9094
  ]
  node [
    id 2
    label "Bellcanada PoP 2"
    Latitude 34.30166
    Longitude -114.97203
  ]
  node [
    id 3
    label "Bellcanada PoP 3"
    Latitude 32.88424
    Longitude -84.47539
  ]
  node [
    id 4
    label "Bellcanada PoP 4"
    Latitude 49.6279
    Longitude -98.27621
  ]
  node [
    id 5
    label "Bellcanada PoP 5"
    Latitude 51.05807
    Longitude -91.43536
  ]
  node [
    id 6
    label "Bellcanada PoP 6"
    Latitude 34.83515
    Longitude -86.4776
  ]
  node [
    id 7
    label "Bellcanada PoP 7"
    Latitude 31.89204
    Longitude -95.20452
  ]
  node [
    id 8
    label "Bellcanada PoP 8"
    Latitude 41.58371
    Longitude -87.90616
  ]
  node [
    id 9
    label "Bellcanada PoP 9"
    Latitude 32.91501
    Longitude -87.23208
  ]
  node [
    id 10
    label "Bellcanada PoP 10"
    Latitude 46.16302
    Longitude -117.9627
  ]
  node [
    id 11
    label "Bellcanada PoP 11"
    Latitude 32.03018
    Longitude -80.13377
  ]
  node [
    id 12
    label "Bellcanada PoP 12"
    Latitude 42.80903
    Longitude -71.10335
  ]
  node [
    id 13
    label "Bellcanada PoP 13"
    Latitude 45.34923
    Longitude -94.47403
  ]
  node [
    id 14
    label "Bellcanada PoP 14"
    Latitude 51.34151
    Longitude -85.01901
  ]
  node [
    id 15
    label "Bellcanada PoP 15"
    Latitude 40.68167
    Longitude -76.3215
  ]
  node [
    id 16
    label "Bellcanada PoP 16"
    Latitude 34.18177
    Longitude -95.75511
  ]
  node [
    id 17
    label "Bellcanada PoP 17"
    Latitude 43.50111
    Longitude -81.10318
  ]
  node [
    id 18
    label "Bellcanada PoP 18"
    Latitude 31.69873
    Longitude -114.91197
  ]
  node [
    id 19
    label "Bellcanada PoP 19"
    Latitude 49.66714
    Longitude -101.26332
  ]
  node [
    id 20
    label "Bellcanada PoP 20"
    Latitude 30.30511
    Longitude -118.44918
  ]
  node [
    id 21
    label "Bellcanada PoP 21"
    Latitude 50.49698
    Longitude -95.73901
  ]
  node [
    id 22
    label "Bellcanada PoP 22"
    Latitude 43.4352
    Longitude -96.61357
  ]
  node [
    id 23
    label "Bellcanada PoP 23"
    Latitude 37.06149
    Longitude -92.3323
  ]
  node [
    id 24
    label "Bellcanada PoP 24"
    Latitude 38.47043
    Longitude -88.33156
  ]
  node [
    id 25
    label "Bellcanada PoP 25"
    Latitude 39.85831
    Longitude -74.03997
  ]
  node [
    id 26
    label "Bellcanada PoP 26"
    Latitude 41.64281
    Longitude -79.40517
  ]
  node [
    id 27
    label "Bellcanada PoP 27"
    Latitude 30.1298
    Longitude -74.88144
  ]
  edge [
    source 0
    target 1
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 8
  ]
  edge [
    source 0
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 18
  ]
  edge [
    source 2
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 15
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
  ]
  edge [
    source 7
    target 9
  ]
  edge [
    source 7
    target 27
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 10
  ]
  edge [
    source 8
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 21
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 10
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 11
    target 27
  ]
  edge [
    source 12
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 20
  ]
  edge [
    source 12
    target 24
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 26
  ]
  edge [
    source 19
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 23
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 23
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 24
    target 25
  ]
  edge [
    source 25
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 26
    target 27
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "AttMpls"
  directed 0
  node [
    id 0
    label "AttMpls PoP 0"
    Latitude 40.03328
    Longitude -120.17232
  ]
  node [
    id 1
    label "AttMpls PoP 1"
    Latitude 42.54777
    Longitude -107.60332
  ]
  node [
    id 2
    label "AttMpls PoP 2"
    Latitude 32.66357
    Longitude -74.30114
  ]
  node [
    id 3
    label "AttMpls PoP 3"
    Latitude 38.33831
    Longitude -88.63272
  ]
  node [
    id 4
    label "AttMpls PoP 4"
    Latitude 30.60194
    Longitude -109.29688
  ]
  node [
    id 5
    label "AttMpls PoP 5"
    Latitude 31.57154
    Longitude -87.93597
  ]
  node [
    id 6
    label "AttMpls PoP 6"
    Latitude 41.16911
    Longitude -79.17346
  ]
  node [
    id 7
    label "AttMpls PoP 7"
    Latitude 38.41096
    Longitude -103.73673
  ]
  node [
    id 8
    label "AttMpls PoP 8"
    Latitude 41.91253
    Longitude -112.18716
  ]
  node [
    id 9
    label "AttMpls PoP 9"
    Latitude 34.43779
    Longitude -118.97256
  ]
  node [
    id 10
    label "AttMpls PoP 10"
    Latitude 42.12594
    Longitude -114.1814
  ]
  node [
    id 11
    label "AttMpls PoP 11"
    Latitude 30.42097
    Longitude -111.92436
  ]
  node [
    id 12
    label "AttMpls PoP 12"
    Latitude 44.81609
    Longitude -84.83628
  ]
  node [
    id 13
    label "AttMpls PoP 13"
    Latitude 36.83472
    Longitude -79.38772
  ]
  node [
    id 14
    label "AttMpls PoP 14"
    Latitude 44.25419
    Longitude -75.94027
  ]
  node [
    id 15
    label "AttMpls PoP 15"
    Latitude 38.22248
    Longitude -111.99573
  ]
  node [
    id 16
    label "AttMpls PoP 16"
    Latitude 41.32266
    Longitude -78.46683
  ]
  node [
    id 17
    label "AttMpls PoP 17"
    Latitude 36.50815
    Longitude -119.44402
  ]
  node [
    id 18
    label "AttMpls PoP 18"
    Latitude 38.85865
    Longitude -121.12403
  ]
  node [
    id 19
    label "AttMpls PoP 19"
    Latitude 35.77871
    Longitude -101.16874
  ]
  node [
    id 20
    label "AttMpls PoP 20"
    Latitude 33.58447
    Longitude -84.62293
  ]
  node [
    id 21
    label "AttMpls PoP 21"
    Latitude 40.67005
    Longitude -115.42916
  ]
  node [
    id 22
    label "AttMpls PoP 22"
    Latitude 46.81307
    Longitude -104.30212
  ]
  node [
    id 23
    label "AttMpls PoP 23"
    Latitude 35.6892
    Longitude -97.60462
  ]
  node [
    id 24
    label "AttMpls PoP 24"
    Latitude 31.96765
    Longitude -93.27064
  ]
  edge [
    source 0
    target 1
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 2
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 15
  ]
  edge [
    source 0
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 4
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 21
  ]
  edge [
    source 7
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 24
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 10
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 17
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Esnet"
  directed 0
  node [
    id 0
    label "Esnet PoP 0"
    Latitude 33.59199
    Longitude -98.00247
  ]
  node [
    id 1
    label "Esnet PoP 1"
    Latitude 32.16381
    Longitude -86.8022
  ]
  node [
    id 2
    label "Esnet PoP 2"
    Latitude 33.37622
    Longitude -86.74517
  ]
  node [
    id 3
    label "Esnet PoP 3"
    Latitude 39.55411
    Longitude -111.2449
  ]
  node [
    id 4
    label "Esnet PoP 4"
    Latitude 37.98089
    Longitude -101.03657
  ]
  node [
    id 5
    label "Esnet PoP 5"
    Latitude 41.73927
    Longitude -106.57284
  ]
  node [
    id 6
    label "Esnet PoP 6"
    Latitude 34.34876
    Longitude -116.93258
  ]
  node [
    id 7
    label "Esnet PoP 7"
    Latitude 44.13738
    Longitude -114.61275
  ]
  node [
    id 8
    label "Esnet PoP 8"
    Latitude 33.42711
    Longitude -100.71947
  ]
  node [
    id 9
    label "Esnet PoP 9"
    Latitude 38.8117
    Longitude -113.109
  ]
  node [
    id 10
    label "Esnet PoP 10"
    Latitude 43.55417
    Longitude -79.6955
  ]
  node [
    id 11
    label "Esnet PoP 11"
    Latitude 41.90165
    Longitude -113.93209
  ]
  node [
    id 12
    label "Esnet PoP 12"
    Latitude 40.2119
    Longitude -96.30158
  ]
  node [
    id 13
    label "Esnet PoP 13"
    Latitude 35.01406
    Longitude -117.629
  ]
  node [
    id 14
    label "Esnet PoP 14"
    Latitude 30.67799
    Longitude -92.34592
  ]
  node [
    id 15
    label "Esnet PoP 15"
    Latitude 34.11556
    Longitude -79.74372
  ]
  node [
    id 16
    label "Esnet PoP 16"
    Latitude 37.70781
    Longitude -111.14317
  ]
  node [
    id 17
    label "Esnet PoP 17"
    Latitude 40.97829
    Longitude -121.59505
  ]
  node [
    id 18
    label "Esnet PoP 18"
    Latitude 33.76781
    Longitude -80.25698
  ]
  node [
    id 19
    label "Esnet PoP 19"
    Latitude 43.57061
    Longitude -103.6625
  ]
  node [
    id 20
    label "Esnet PoP 20"
    Latitude 43.999
    Longitude -79.15734
  ]
  node [
    id 21
    label "Esnet PoP 21"
    Latitude 30.25644
    Longitude -96.95115
  ]
  node [
    id 22
    label "Esnet PoP 22"
    Latitude 43.32309
    Longitude -110.31357
  ]
  node [
    id 23
    label "Esnet PoP 23"
    Latitude 30.6786
    Longitude -113.6603
  ]
  node [
    id 24
    label "Esnet PoP 24"
    Latitude 38.82491
    Longitude -120.36039
  ]
  node [
    id 25
    label "Esnet PoP 25"
    Latitude 32.61095
    Longitude -83.17936
  ]
  node [
    id 26
    label "Esnet PoP 26"
    Latitude 44.56615
    Longitude -78.32588
  ]
  node [
    id 27
    label "Esnet PoP 27"
    Latitude 42.70223
    Longitude -96.22073
  ]
  edge [
    source 0
    target 1
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 5
  ]
  edge [
    source 3
    target 12
  ]
  edge [
    source 3
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 26
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 21
  ]
  edge [
    source 12
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 23
  ]
  edge [
    source 22
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 24
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Interoute"
  directed 0
  node [
    id 0
    label "Interoute PoP 0"
    Latitude 55.49789
    Longitude 2.81724
  ]
  node [
    id 1
    label "Interoute PoP 1"
    Latitude 55.0929
    Longitude -6.41923
  ]
  node [
    id 2
    label "Interoute PoP 2"
    Latitude 43.06225
    Longitude 2.69866
  ]
  node [
    id 3
    label "Interoute PoP 3"
    Latitude 49.46155
    Longitude 2.99067
  ]
  node [
    id 4
    label "Interoute PoP 4"
    Latitude 41.85828
    Longitude 11.2403
  ]
  node [
    id 5
    label "Interoute PoP 5"
    Latitude 43.79846
    Longitude -2.57867
  ]
  node [
    id 6
    label "Interoute PoP 6"
    Latitude 39.95886
    Longitude 4.40619
  ]
  node [
    id 7
    label "Interoute PoP 7"
    Latitude 59.32255
    Longitude 20.50077
  ]
  node [
    id 8
    label "Interoute PoP 8"
    Latitude 43.60319
    Longitude 13.14449
  ]
  node [
    id 9
    label "Interoute PoP 9"
    Latitude 52.55795
    Longitude 12.59238
  ]
  node [
    id 10
    label "Interoute PoP 10"
    Latitude 53.88741
    Longitude 9.3555
  ]
  node [
    id 11
    label "Interoute PoP 11"
    Latitude 41.86687
    Longitude -5.67215
  ]
  node [
    id 12
    label "Interoute PoP 12"
    Latitude 44.52429
    Longitude -7.92015
  ]
  node [
    id 13
    label "Interoute PoP 13"
    Latitude 55.49229
    Longitude 12.51434
  ]
  node [
    id 14
    label "Interoute PoP 14"
    Latitude 48.3949
    Longitude 3.87457
  ]
  node [
    id 15
    label "Interoute PoP 15"
    Latitude 42.17128
    Longitude -0.83719
  ]
  node [
    id 16
    label "Interoute PoP 16"
    Latitude 43.62693
    Longitude 24.53176
  ]
  node [
    id 17
    label "Interoute PoP 17"
    Latitude 49.49961
    Longitude 4.41825
  ]
  node [
    id 18
    label "Interoute PoP 18"
    Latitude 38.37894
    Longitude 13.88354
  ]
  node [
    id 19
    label "Interoute PoP 19"
    Latitude 44.2654
    Longitude -1.83364
  ]
  node [
    id 20
    label "Interoute PoP 20"
    Latitude 59.60018
    Longitude -4.04294
  ]
  node [
    id 21
    label "Interoute PoP 21"
    Latitude 54.68709
    Longitude 4.49502
  ]
  node [
    id 22
    label "Interoute PoP 22"
    Latitude 39.49439
    Longitude 1.45616
  ]
  node [
    id 23
    label "Interoute PoP 23"
    Latitude 54.33317
    Longitude -1.54313
  ]
  node [
    id 24
    label "Interoute PoP 24"
    Latitude 53.61488
    Longitude -4.53853
  ]
  node [
    id 25
    label "Interoute PoP 25"
    Latitude 50.27006
    Longitude 13.09896
  ]
  node [
    id 26
    label "Interoute PoP 26"
    Latitude 38.38771
    Longitude 16.80564
  ]
  node [
    id 27
    label "Interoute PoP 27"
    Latitude 53.30261
    Longitude 0.94977
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 23
  ]
  edge [
    source 0
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 21
  ]
  edge [
    source 2
    target 3
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 21
  ]
  edge [
    source 4
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 24
  ]
  edge [
    source 7
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 17
  ]
  edge [
    source 9
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 14
  ]
  edge [
    source 10
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 10
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 23
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 15
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 26
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 19
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "UniC"
  directed 0
  node [
    id 0
    label "UniC PoP 0"
    Latitude 42.56268
    Longitude -4.11267
  ]
  node [
    id 1
    label "UniC PoP 1"
    Latitude 42.02962
    Longitude 1.25815
  ]
  node [
    id 2
    label "UniC PoP 2"
    Latitude 41.6635
    Longitude 6.25467
  ]
  node [
    id 3
    label "UniC PoP 3"
    Latitude 39.46942
    Longitude 18.58941
  ]
  node [
    id 4
    label "UniC PoP 4"
    Latitude 45.98602
    Longitude 22.18823
  ]
  node [
    id 5
    label "UniC PoP 5"
    Latitude 49.51871
    Longitude 24.90425
  ]
  node [
    id 6
    label "UniC PoP 6"
    Latitude 43.9455
    Longitude 19.27164
  ]
  node [
    id 7
    label "UniC PoP 7"
    Latitude 38.57658
    Longitude -8.52549
  ]
  node [
    id 8
    label "UniC PoP 8"
    Latitude 54.25909
    Longitude 19.0524
  ]
  node [
    id 9
    label "UniC PoP 9"
    Latitude 41.4854
    Longitude -2.49407
  ]
  node [
    id 10
    label "UniC PoP 10"
    Latitude 51.0057
    Longitude 3.68132
  ]
  node [
    id 11
    label "UniC PoP 11"
    Latitude 49.98396
    Longitude -7.37788
  ]
  node [
    id 12
    label "UniC PoP 12"
    Latitude 52.38185
    Longitude 16.83959
  ]
  node [
    id 13
    label "UniC PoP 13"
    Latitude 48.6098
    Longitude 18.04749
  ]
  node [
    id 14
    label "UniC PoP 14"
    Latitude 52.66303
    Longitude 22.74438
  ]
  node [
    id 15
    label "UniC PoP 15"
    Latitude 56.12295
    Longitude -2.98661
  ]
  node [
    id 16
    label "UniC PoP 16"
    Latitude 39.70276
    Longitude -0.39883
  ]
  node [
    id 17
    label "UniC PoP 17"
    Latitude 53.11595
    Longitude -1.26714
  ]
  node [
    id 18
    label "UniC PoP 18"
    Latitude 41.52118
    Longitude 22.37083
  ]
  node [
    id 19
    label "UniC PoP 19"
    Latitude 52.55256
    Longitude 2.42725
  ]
  node [
    id 20
    label "UniC PoP 20"
    Latitude 51.08871
    Longitude 11.74537
  ]
  node [
    id 21
    label "UniC PoP 21"
    Latitude 51.21279
    Longitude -2.9288
  ]
  node [
    id 22
    label "UniC PoP 22"
    Latitude 50.04986
    Longitude -8.53096
  ]
  node [
    id 23
    label "UniC PoP 23"
    Latitude 38.56773
    Longitude 7.693
  ]
  node [
    id 24
    label "UniC PoP 24"
    Latitude 40.7143
    Longitude -7.5972
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 4
  ]
  edge [
    source 0
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 7
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 6
    target 7
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 10
  ]
  edge [
    source 6
    target 16
  ]
  edge [
    source 6
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 14
  ]
  edge [
    source 9
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 13
  ]
  edge [
    source 9
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 12
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 22
  ]
  edge [
    source 13
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 19
  ]
  edge [
    source 16
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 17
    target 18
  ]
  edge [
    source 17
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 20
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 23
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

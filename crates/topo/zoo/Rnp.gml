Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Rnp"
  directed 0
  node [
    id 0
    label "Rnp PoP 0"
    Latitude -5.09641
    Longitude -38.54457
  ]
  node [
    id 1
    label "Rnp PoP 1"
    Latitude -9.06983
    Longitude -35.99794
  ]
  node [
    id 2
    label "Rnp PoP 2"
    Latitude -26.28982
    Longitude -54.32323
  ]
  node [
    id 3
    label "Rnp PoP 3"
    Latitude -5.12603
    Longitude -35.39277
  ]
  node [
    id 4
    label "Rnp PoP 4"
    Latitude -10.09316
    Longitude -57.64738
  ]
  node [
    id 5
    label "Rnp PoP 5"
    Latitude -19.53308
    Longitude -38.75151
  ]
  node [
    id 6
    label "Rnp PoP 6"
    Latitude -11.58878
    Longitude -35.78154
  ]
  node [
    id 7
    label "Rnp PoP 7"
    Latitude -28.68706
    Longitude -43.6805
  ]
  node [
    id 8
    label "Rnp PoP 8"
    Latitude -12.19055
    Longitude -54.93335
  ]
  node [
    id 9
    label "Rnp PoP 9"
    Latitude -19.69091
    Longitude -39.2218
  ]
  node [
    id 10
    label "Rnp PoP 10"
    Latitude -17.06338
    Longitude -38.08052
  ]
  node [
    id 11
    label "Rnp PoP 11"
    Latitude -15.62545
    Longitude -36.86258
  ]
  node [
    id 12
    label "Rnp PoP 12"
    Latitude -16.56988
    Longitude -41.50134
  ]
  node [
    id 13
    label "Rnp PoP 13"
    Latitude -6.12287
    Longitude -51.41585
  ]
  node [
    id 14
    label "Rnp PoP 14"
    Latitude -19.82309
    Longitude -54.83158
  ]
  node [
    id 15
    label "Rnp PoP 15"
    Latitude -2.59283
    Longitude -44.13481
  ]
  node [
    id 16
    label "Rnp PoP 16"
    Latitude -7.93992
    Longitude -40.01353
  ]
  node [
    id 17
    label "Rnp PoP 17"
    Latitude -10.3618
    Longitude -39.31846
  ]
  node [
    id 18
    label "Rnp PoP 18"
    Latitude -19.04283
    Longitude -48.63516
  ]
  node [
    id 19
    label "Rnp PoP 19"
    Latitude -28.3169
    Longitude -38.46815
  ]
  node [
    id 20
    label "Rnp PoP 20"
    Latitude -10.59506
    Longitude -41.98142
  ]
  node [
    id 21
    label "Rnp PoP 21"
    Latitude -9.48244
    Longitude -35.45792
  ]
  node [
    id 22
    label "Rnp PoP 22"
    Latitude -4.99988
    Longitude -51.81615
  ]
  node [
    id 23
    label "Rnp PoP 23"
    Latitude -29.4243
    Longitude -50.64795
  ]
  node [
    id 24
    label "Rnp PoP 24"
    Latitude -23.50515
    Longitude -57.14937
  ]
  node [
    id 25
    label "Rnp PoP 25"
    Latitude -4.17135
    Longitude -57.85308
  ]
  node [
    id 26
    label "Rnp PoP 26"
    Latitude -7.42176
    Longitude -47.02342
  ]
  node [
    id 27
    label "Rnp PoP 27"
    Latitude -20.56127
    Longitude -48.9007
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 21
  ]
  edge [
    source 0
    target 27
  ]
  edge [
    source 1
    target 2
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 11
  ]
  edge [
    source 6
    target 12
  ]
  edge [
    source 6
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 15
  ]
  edge [
    source 9
    target 16
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 11
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 17
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 25
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 20
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 23
    target 24
  ]
  edge [
    source 24
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 25
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
]

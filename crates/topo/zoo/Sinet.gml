Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Sinet"
  directed 0
  node [
    id 0
    label "Sinet PoP 0"
    Latitude 40.83863
    Longitude 134.08642
  ]
  node [
    id 1
    label "Sinet PoP 1"
    Latitude 34.16291
    Longitude 138.32789
  ]
  node [
    id 2
    label "Sinet PoP 2"
    Latitude 39.61178
    Longitude 142.94874
  ]
  node [
    id 3
    label "Sinet PoP 3"
    Latitude 38.66119
    Longitude 139.65373
  ]
  node [
    id 4
    label "Sinet PoP 4"
    Latitude 42.04004
    Longitude 135.02658
  ]
  node [
    id 5
    label "Sinet PoP 5"
    Latitude 34.51384
    Longitude 131.6261
  ]
  node [
    id 6
    label "Sinet PoP 6"
    Latitude 40.17179
    Longitude 132.82493
  ]
  node [
    id 7
    label "Sinet PoP 7"
    Latitude 33.57332
    Longitude 130.41127
  ]
  node [
    id 8
    label "Sinet PoP 8"
    Latitude 40.6486
    Longitude 137.13829
  ]
  node [
    id 9
    label "Sinet PoP 9"
    Latitude 33.98522
    Longitude 138.02661
  ]
  node [
    id 10
    label "Sinet PoP 10"
    Latitude 40.39576
    Longitude 134.42611
  ]
  node [
    id 11
    label "Sinet PoP 11"
    Latitude 34.49093
    Longitude 134.22629
  ]
  node [
    id 12
    label "Sinet PoP 12"
    Latitude 35.44963
    Longitude 135.76265
  ]
  node [
    id 13
    label "Sinet PoP 13"
    Latitude 35.99275
    Longitude 141.67873
  ]
  node [
    id 14
    label "Sinet PoP 14"
    Latitude 34.04392
    Longitude 140.75429
  ]
  node [
    id 15
    label "Sinet PoP 15"
    Latitude 33.78806
    Longitude 141.34396
  ]
  node [
    id 16
    label "Sinet PoP 16"
    Latitude 32.00835
    Longitude 138.64555
  ]
  node [
    id 17
    label "Sinet PoP 17"
    Latitude 33.86277
    Longitude 130.36843
  ]
  node [
    id 18
    label "Sinet PoP 18"
    Latitude 36.85922
    Longitude 135.38399
  ]
  node [
    id 19
    label "Sinet PoP 19"
    Latitude 42.45275
    Longitude 136.021
  ]
  node [
    id 20
    label "Sinet PoP 20"
    Latitude 38.4983
    Longitude 132.68613
  ]
  node [
    id 21
    label "Sinet PoP 21"
    Latitude 39.54598
    Longitude 141.61331
  ]
  node [
    id 22
    label "Sinet PoP 22"
    Latitude 40.37964
    Longitude 141.74899
  ]
  node [
    id 23
    label "Sinet PoP 23"
    Latitude 41.09614
    Longitude 131.00165
  ]
  node [
    id 24
    label "Sinet PoP 24"
    Latitude 40.83084
    Longitude 134.24648
  ]
  node [
    id 25
    label "Sinet PoP 25"
    Latitude 35.70709
    Longitude 141.20667
  ]
  node [
    id 26
    label "Sinet PoP 26"
    Latitude 32.20596
    Longitude 143.56017
  ]
  node [
    id 27
    label "Sinet PoP 27"
    Latitude 35.72364
    Longitude 140.77304
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 12
  ]
  edge [
    source 0
    target 27
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 2
    target 18
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 14
  ]
  edge [
    source 6
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 7
    target 27
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 13
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 16
  ]
  edge [
    source 15
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
  ]
  edge [
    source 18
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 22
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 26
    target 27
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Navigata"
  directed 0
  node [
    id 0
    label "Navigata PoP 0"
    Latitude 41.2433
    Longitude -84.08447
  ]
  node [
    id 1
    label "Navigata PoP 1"
    Latitude 35.6217
    Longitude -101.44043
  ]
  node [
    id 2
    label "Navigata PoP 2"
    Latitude 32.4912
    Longitude -82.41233
  ]
  node [
    id 3
    label "Navigata PoP 3"
    Latitude 40.55718
    Longitude -76.32502
  ]
  node [
    id 4
    label "Navigata PoP 4"
    Latitude 31.05809
    Longitude -89.94651
  ]
  node [
    id 5
    label "Navigata PoP 5"
    Latitude 31.12254
    Longitude -78.07053
  ]
  node [
    id 6
    label "Navigata PoP 6"
    Latitude 46.72763
    Longitude -95.19003
  ]
  node [
    id 7
    label "Navigata PoP 7"
    Latitude 51.41637
    Longitude -108.60047
  ]
  node [
    id 8
    label "Navigata PoP 8"
    Latitude 33.6176
    Longitude -89.29074
  ]
  node [
    id 9
    label "Navigata PoP 9"
    Latitude 44.95455
    Longitude -82.10939
  ]
  node [
    id 10
    label "Navigata PoP 10"
    Latitude 39.07942
    Longitude -99.64633
  ]
  node [
    id 11
    label "Navigata PoP 11"
    Latitude 43.17673
    Longitude -111.38944
  ]
  node [
    id 12
    label "Navigata PoP 12"
    Latitude 47.67052
    Longitude -108.2853
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 2
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 12
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 1
    target 12
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 6
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
]

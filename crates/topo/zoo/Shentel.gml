Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Shentel"
  directed 0
  node [
    id 0
    label "Shentel PoP 0"
    Latitude 35.96438
    Longitude -87.37233
  ]
  node [
    id 1
    label "Shentel PoP 1"
    Latitude 34.29727
    Longitude -103.12907
  ]
  node [
    id 2
    label "Shentel PoP 2"
    Latitude 44.58806
    Longitude -97.92878
  ]
  node [
    id 3
    label "Shentel PoP 3"
    Latitude 30.03811
    Longitude -116.60348
  ]
  node [
    id 4
    label "Shentel PoP 4"
    Latitude 35.18903
    Longitude -102.74431
  ]
  node [
    id 5
    label "Shentel PoP 5"
    Latitude 45.83488
    Longitude -108.19259
  ]
  node [
    id 6
    label "Shentel PoP 6"
    Latitude 35.19552
    Longitude -106.63649
  ]
  node [
    id 7
    label "Shentel PoP 7"
    Latitude 40.93073
    Longitude -103.48526
  ]
  node [
    id 8
    label "Shentel PoP 8"
    Latitude 46.00277
    Longitude -106.56703
  ]
  node [
    id 9
    label "Shentel PoP 9"
    Latitude 42.50841
    Longitude -84.29498
  ]
  node [
    id 10
    label "Shentel PoP 10"
    Latitude 35.33295
    Longitude -107.74124
  ]
  node [
    id 11
    label "Shentel PoP 11"
    Latitude 42.18856
    Longitude -88.29362
  ]
  node [
    id 12
    label "Shentel PoP 12"
    Latitude 35.4036
    Longitude -98.14736
  ]
  node [
    id 13
    label "Shentel PoP 13"
    Latitude 45.01225
    Longitude -77.5342
  ]
  node [
    id 14
    label "Shentel PoP 14"
    Latitude 45.26776
    Longitude -111.32103
  ]
  node [
    id 15
    label "Shentel PoP 15"
    Latitude 33.94037
    Longitude -119.5388
  ]
  node [
    id 16
    label "Shentel PoP 16"
    Latitude 38.88999
    Longitude -115.50567
  ]
  node [
    id 17
    label "Shentel PoP 17"
    Latitude 39.02872
    Longitude -120.33426
  ]
  node [
    id 18
    label "Shentel PoP 18"
    Latitude 32.44386
    Longitude -75.15683
  ]
  node [
    id 19
    label "Shentel PoP 19"
    Latitude 35.05392
    Longitude -114.65101
  ]
  node [
    id 20
    label "Shentel PoP 20"
    Latitude 44.38705
    Longitude -116.57102
  ]
  node [
    id 21
    label "Shentel PoP 21"
    Latitude 31.93854
    Longitude -120.93334
  ]
  node [
    id 22
    label "Shentel PoP 22"
    Latitude 42.69106
    Longitude -113.98275
  ]
  node [
    id 23
    label "Shentel PoP 23"
    Latitude 40.72633
    Longitude -78.13737
  ]
  node [
    id 24
    label "Shentel PoP 24"
    Latitude 34.52922
    Longitude -94.83861
  ]
  node [
    id 25
    label "Shentel PoP 25"
    Latitude 33.0242
    Longitude -104.063
  ]
  node [
    id 26
    label "Shentel PoP 26"
    Latitude 41.5401
    Longitude -114.7213
  ]
  node [
    id 27
    label "Shentel PoP 27"
    Latitude 37.34306
    Longitude -91.16665
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 7
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 27
  ]
  edge [
    source 1
    target 2
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 25
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 10
  ]
  edge [
    source 3
    target 13
  ]
  edge [
    source 3
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 24
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 6
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 17
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 25
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 19
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 25
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Iij"
  directed 0
  node [
    id 0
    label "Iij PoP 0"
    Latitude 40.4356
    Longitude 137.39462
  ]
  node [
    id 1
    label "Iij PoP 1"
    Latitude 35.90326
    Longitude 131.45954
  ]
  node [
    id 2
    label "Iij PoP 2"
    Latitude 33.94723
    Longitude 139.96949
  ]
  node [
    id 3
    label "Iij PoP 3"
    Latitude 34.27379
    Longitude 142.18453
  ]
  node [
    id 4
    label "Iij PoP 4"
    Latitude 40.51052
    Longitude 143.60598
  ]
  node [
    id 5
    label "Iij PoP 5"
    Latitude 37.29035
    Longitude 138.27202
  ]
  node [
    id 6
    label "Iij PoP 6"
    Latitude 35.60048
    Longitude 130.83434
  ]
  node [
    id 7
    label "Iij PoP 7"
    Latitude 38.55261
    Longitude 142.09669
  ]
  node [
    id 8
    label "Iij PoP 8"
    Latitude 40.01143
    Longitude 132.29407
  ]
  node [
    id 9
    label "Iij PoP 9"
    Latitude 42.60565
    Longitude 141.14851
  ]
  node [
    id 10
    label "Iij PoP 10"
    Latitude 37.74371
    Longitude 138.7337
  ]
  node [
    id 11
    label "Iij PoP 11"
    Latitude 37.48899
    Longitude 138.94721
  ]
  node [
    id 12
    label "Iij PoP 12"
    Latitude 42.07312
    Longitude 132.81129
  ]
  node [
    id 13
    label "Iij PoP 13"
    Latitude 37.07348
    Longitude 143.21891
  ]
  node [
    id 14
    label "Iij PoP 14"
    Latitude 42.7855
    Longitude 130.58141
  ]
  node [
    id 15
    label "Iij PoP 15"
    Latitude 32.78849
    Longitude 137.92387
  ]
  node [
    id 16
    label "Iij PoP 16"
    Latitude 41.96943
    Longitude 131.83403
  ]
  node [
    id 17
    label "Iij PoP 17"
    Latitude 33.27617
    Longitude 135.43035
  ]
  node [
    id 18
    label "Iij PoP 18"
    Latitude 41.31216
    Longitude 135.53937
  ]
  node [
    id 19
    label "Iij PoP 19"
    Latitude 35.1616
    Longitude 141.00013
  ]
  node [
    id 20
    label "Iij PoP 20"
    Latitude 36.26318
    Longitude 140.99707
  ]
  node [
    id 21
    label "Iij PoP 21"
    Latitude 40.35614
    Longitude 135.78165
  ]
  node [
    id 22
    label "Iij PoP 22"
    Latitude 35.89135
    Longitude 135.70679
  ]
  node [
    id 23
    label "Iij PoP 23"
    Latitude 42.08852
    Longitude 143.01392
  ]
  node [
    id 24
    label "Iij PoP 24"
    Latitude 39.3639
    Longitude 130.72007
  ]
  node [
    id 25
    label "Iij PoP 25"
    Latitude 36.07408
    Longitude 132.84346
  ]
  node [
    id 26
    label "Iij PoP 26"
    Latitude 38.27878
    Longitude 134.61421
  ]
  node [
    id 27
    label "Iij PoP 27"
    Latitude 38.06864
    Longitude 137.93205
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 4
  ]
  edge [
    source 0
    target 24
  ]
  edge [
    source 0
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 1
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 5
  ]
  edge [
    source 3
    target 7
  ]
  edge [
    source 3
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 10
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 8
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 12
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 16
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 14
    target 20
  ]
  edge [
    source 15
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 24
  ]
  edge [
    source 15
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 20
  ]
  edge [
    source 18
    target 22
  ]
  edge [
    source 19
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 25
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 22
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 22
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 24
    target 25
  ]
  edge [
    source 24
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
]

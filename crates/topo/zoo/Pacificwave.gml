Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Pacificwave"
  directed 0
  node [
    id 0
    label "Pacificwave PoP 0"
    Latitude 32.78159
    Longitude -91.3514
  ]
  node [
    id 1
    label "Pacificwave PoP 1"
    Latitude 38.333
    Longitude -74.33338
  ]
  node [
    id 2
    label "Pacificwave PoP 2"
    Latitude 45.6451
    Longitude -85.05189
  ]
  node [
    id 3
    label "Pacificwave PoP 3"
    Latitude 41.56507
    Longitude -88.61216
  ]
  node [
    id 4
    label "Pacificwave PoP 4"
    Latitude 40.23533
    Longitude -106.66257
  ]
  node [
    id 5
    label "Pacificwave PoP 5"
    Latitude 39.68726
    Longitude -112.70882
  ]
  node [
    id 6
    label "Pacificwave PoP 6"
    Latitude 40.82814
    Longitude -103.35362
  ]
  node [
    id 7
    label "Pacificwave PoP 7"
    Latitude 33.61949
    Longitude -110.38137
  ]
  node [
    id 8
    label "Pacificwave PoP 8"
    Latitude 42.7632
    Longitude -111.22119
  ]
  node [
    id 9
    label "Pacificwave PoP 9"
    Latitude 43.92781
    Longitude -99.39228
  ]
  node [
    id 10
    label "Pacificwave PoP 10"
    Latitude 34.51892
    Longitude -109.93154
  ]
  node [
    id 11
    label "Pacificwave PoP 11"
    Latitude 40.04734
    Longitude -94.21743
  ]
  node [
    id 12
    label "Pacificwave PoP 12"
    Latitude 46.03316
    Longitude -103.49535
  ]
  node [
    id 13
    label "Pacificwave PoP 13"
    Latitude 34.08499
    Longitude -108.72967
  ]
  node [
    id 14
    label "Pacificwave PoP 14"
    Latitude 40.86015
    Longitude -112.53552
  ]
  node [
    id 15
    label "Pacificwave PoP 15"
    Latitude 37.91997
    Longitude -100.11235
  ]
  node [
    id 16
    label "Pacificwave PoP 16"
    Latitude 39.68628
    Longitude -76.8802
  ]
  node [
    id 17
    label "Pacificwave PoP 17"
    Latitude 42.30103
    Longitude -83.46373
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 12
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 15
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Janetbackbone"
  directed 0
  node [
    id 0
    label "Janetbackbone PoP 0"
    Latitude 39.43856
    Longitude 21.30273
  ]
  node [
    id 1
    label "Janetbackbone PoP 1"
    Latitude 41.7743
    Longitude -2.24235
  ]
  node [
    id 2
    label "Janetbackbone PoP 2"
    Latitude 49.61096
    Longitude -1.40828
  ]
  node [
    id 3
    label "Janetbackbone PoP 3"
    Latitude 45.73277
    Longitude -2.92952
  ]
  node [
    id 4
    label "Janetbackbone PoP 4"
    Latitude 55.50105
    Longitude -5.25088
  ]
  node [
    id 5
    label "Janetbackbone PoP 5"
    Latitude 53.27146
    Longitude 15.22916
  ]
  node [
    id 6
    label "Janetbackbone PoP 6"
    Latitude 59.22941
    Longitude 20.59948
  ]
  node [
    id 7
    label "Janetbackbone PoP 7"
    Latitude 42.78013
    Longitude 6.4873
  ]
  node [
    id 8
    label "Janetbackbone PoP 8"
    Latitude 54.49457
    Longitude 24.40365
  ]
  node [
    id 9
    label "Janetbackbone PoP 9"
    Latitude 56.52527
    Longitude -6.67481
  ]
  node [
    id 10
    label "Janetbackbone PoP 10"
    Latitude 47.74439
    Longitude 4.07448
  ]
  node [
    id 11
    label "Janetbackbone PoP 11"
    Latitude 38.63968
    Longitude 15.42265
  ]
  node [
    id 12
    label "Janetbackbone PoP 12"
    Latitude 50.67542
    Longitude -1.54975
  ]
  node [
    id 13
    label "Janetbackbone PoP 13"
    Latitude 53.20464
    Longitude 20.27765
  ]
  node [
    id 14
    label "Janetbackbone PoP 14"
    Latitude 49.47335
    Longitude 23.21982
  ]
  node [
    id 15
    label "Janetbackbone PoP 15"
    Latitude 57.30427
    Longitude 21.44732
  ]
  node [
    id 16
    label "Janetbackbone PoP 16"
    Latitude 38.62688
    Longitude 14.61323
  ]
  node [
    id 17
    label "Janetbackbone PoP 17"
    Latitude 54.68378
    Longitude -2.37583
  ]
  node [
    id 18
    label "Janetbackbone PoP 18"
    Latitude 52.01013
    Longitude 1.02099
  ]
  node [
    id 19
    label "Janetbackbone PoP 19"
    Latitude 50.28222
    Longitude 13.59418
  ]
  node [
    id 20
    label "Janetbackbone PoP 20"
    Latitude 54.40332
    Longitude 9.76686
  ]
  node [
    id 21
    label "Janetbackbone PoP 21"
    Latitude 44.11436
    Longitude 21.02352
  ]
  node [
    id 22
    label "Janetbackbone PoP 22"
    Latitude 53.5081
    Longitude 3.66777
  ]
  node [
    id 23
    label "Janetbackbone PoP 23"
    Latitude 58.23169
    Longitude 19.9985
  ]
  node [
    id 24
    label "Janetbackbone PoP 24"
    Latitude 57.01421
    Longitude 15.53294
  ]
  node [
    id 25
    label "Janetbackbone PoP 25"
    Latitude 42.49088
    Longitude 15.40608
  ]
  node [
    id 26
    label "Janetbackbone PoP 26"
    Latitude 41.56329
    Longitude 12.1969
  ]
  node [
    id 27
    label "Janetbackbone PoP 27"
    Latitude 44.31356
    Longitude 11.10325
  ]
  edge [
    source 0
    target 1
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 6
  ]
  edge [
    source 0
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 15
  ]
  edge [
    source 2
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 9
  ]
  edge [
    source 3
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 14
  ]
  edge [
    source 4
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 5
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 14
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 24
  ]
  edge [
    source 16
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 17
    target 18
  ]
  edge [
    source 18
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 20
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 26
    target 27
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Nextgen"
  directed 0
  node [
    id 0
    label "Nextgen PoP 0"
    Latitude -36.85044
    Longitude 135.1271
  ]
  node [
    id 1
    label "Nextgen PoP 1"
    Latitude -35.20537
    Longitude 136.46687
  ]
  node [
    id 2
    label "Nextgen PoP 2"
    Latitude -30.10847
    Longitude 119.1517
  ]
  node [
    id 3
    label "Nextgen PoP 3"
    Latitude -30.29806
    Longitude 149.79597
  ]
  node [
    id 4
    label "Nextgen PoP 4"
    Latitude -25.35944
    Longitude 128.17344
  ]
  node [
    id 5
    label "Nextgen PoP 5"
    Latitude -31.72256
    Longitude 131.88079
  ]
  node [
    id 6
    label "Nextgen PoP 6"
    Latitude -37.7267
    Longitude 126.63241
  ]
  node [
    id 7
    label "Nextgen PoP 7"
    Latitude -17.58092
    Longitude 121.08535
  ]
  node [
    id 8
    label "Nextgen PoP 8"
    Latitude -27.36121
    Longitude 135.83012
  ]
  node [
    id 9
    label "Nextgen PoP 9"
    Latitude -34.85239
    Longitude 129.47817
  ]
  node [
    id 10
    label "Nextgen PoP 10"
    Latitude -32.77165
    Longitude 151.75536
  ]
  node [
    id 11
    label "Nextgen PoP 11"
    Latitude -31.3824
    Longitude 121.13887
  ]
  node [
    id 12
    label "Nextgen PoP 12"
    Latitude -18.2152
    Longitude 136.10269
  ]
  node [
    id 13
    label "Nextgen PoP 13"
    Latitude -36.1706
    Longitude 143.58367
  ]
  node [
    id 14
    label "Nextgen PoP 14"
    Latitude -23.42071
    Longitude 149.24299
  ]
  node [
    id 15
    label "Nextgen PoP 15"
    Latitude -26.69431
    Longitude 121.9768
  ]
  node [
    id 16
    label "Nextgen PoP 16"
    Latitude -35.91246
    Longitude 125.8702
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 16
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 1
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 3
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 12
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
  ]
  edge [
    source 9
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 16
  ]
]

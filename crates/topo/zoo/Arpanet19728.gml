Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Arpanet19728"
  directed 0
  node [
    id 0
    label "Arpanet19728 PoP 0"
    Latitude 31.98366
    Longitude -120.30348
  ]
  node [
    id 1
    label "Arpanet19728 PoP 1"
    Latitude 32.55289
    Longitude -88.85582
  ]
  node [
    id 2
    label "Arpanet19728 PoP 2"
    Latitude 33.89516
    Longitude -117.99591
  ]
  node [
    id 3
    label "Arpanet19728 PoP 3"
    Latitude 34.95343
    Longitude -93.8958
  ]
  node [
    id 4
    label "Arpanet19728 PoP 4"
    Latitude 36.44846
    Longitude -82.8522
  ]
  node [
    id 5
    label "Arpanet19728 PoP 5"
    Latitude 42.99206
    Longitude -74.41615
  ]
  node [
    id 6
    label "Arpanet19728 PoP 6"
    Latitude 35.22403
    Longitude -111.84874
  ]
  node [
    id 7
    label "Arpanet19728 PoP 7"
    Latitude 34.98489
    Longitude -111.06732
  ]
  node [
    id 8
    label "Arpanet19728 PoP 8"
    Latitude 36.31915
    Longitude -78.09141
  ]
  node [
    id 9
    label "Arpanet19728 PoP 9"
    Latitude 34.47238
    Longitude -87.19036
  ]
  node [
    id 10
    label "Arpanet19728 PoP 10"
    Latitude 43.39971
    Longitude -78.69824
  ]
  node [
    id 11
    label "Arpanet19728 PoP 11"
    Latitude 40.887
    Longitude -90.06203
  ]
  node [
    id 12
    label "Arpanet19728 PoP 12"
    Latitude 41.63807
    Longitude -99.78232
  ]
  node [
    id 13
    label "Arpanet19728 PoP 13"
    Latitude 38.08651
    Longitude -117.54318
  ]
  node [
    id 14
    label "Arpanet19728 PoP 14"
    Latitude 45.53446
    Longitude -88.66641
  ]
  node [
    id 15
    label "Arpanet19728 PoP 15"
    Latitude 46.21214
    Longitude -109.20327
  ]
  node [
    id 16
    label "Arpanet19728 PoP 16"
    Latitude 32.34277
    Longitude -108.78702
  ]
  node [
    id 17
    label "Arpanet19728 PoP 17"
    Latitude 40.88724
    Longitude -87.87278
  ]
  node [
    id 18
    label "Arpanet19728 PoP 18"
    Latitude 34.33298
    Longitude -120.84251
  ]
  node [
    id 19
    label "Arpanet19728 PoP 19"
    Latitude 44.82198
    Longitude -74.6057
  ]
  node [
    id 20
    label "Arpanet19728 PoP 20"
    Latitude 34.93174
    Longitude -87.75566
  ]
  node [
    id 21
    label "Arpanet19728 PoP 21"
    Latitude 31.49014
    Longitude -103.22977
  ]
  node [
    id 22
    label "Arpanet19728 PoP 22"
    Latitude 43.11232
    Longitude -96.87575
  ]
  node [
    id 23
    label "Arpanet19728 PoP 23"
    Latitude 42.10943
    Longitude -81.34283
  ]
  node [
    id 24
    label "Arpanet19728 PoP 24"
    Latitude 34.75789
    Longitude -100.36772
  ]
  node [
    id 25
    label "Arpanet19728 PoP 25"
    Latitude 30.48329
    Longitude -91.16976
  ]
  node [
    id 26
    label "Arpanet19728 PoP 26"
    Latitude 46.01626
    Longitude -105.10945
  ]
  node [
    id 27
    label "Arpanet19728 PoP 27"
    Latitude 44.87601
    Longitude -82.30768
  ]
  edge [
    source 0
    target 1
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 2
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 8
  ]
  edge [
    source 4
    target 27
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 13
  ]
  edge [
    source 6
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 8
    target 20
  ]
  edge [
    source 9
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 14
  ]
  edge [
    source 12
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 15
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 22
  ]
  edge [
    source 15
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 19
  ]
  edge [
    source 18
    target 20
  ]
  edge [
    source 18
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 20
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 24
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Goodnet"
  directed 0
  node [
    id 0
    label "Goodnet PoP 0"
    Latitude 42.58569
    Longitude -81.1152
  ]
  node [
    id 1
    label "Goodnet PoP 1"
    Latitude 39.13679
    Longitude -104.54522
  ]
  node [
    id 2
    label "Goodnet PoP 2"
    Latitude 38.57783
    Longitude -111.79419
  ]
  node [
    id 3
    label "Goodnet PoP 3"
    Latitude 34.89023
    Longitude -90.10569
  ]
  node [
    id 4
    label "Goodnet PoP 4"
    Latitude 36.0306
    Longitude -105.11179
  ]
  node [
    id 5
    label "Goodnet PoP 5"
    Latitude 43.11109
    Longitude -92.37112
  ]
  node [
    id 6
    label "Goodnet PoP 6"
    Latitude 38.36747
    Longitude -80.32973
  ]
  node [
    id 7
    label "Goodnet PoP 7"
    Latitude 33.87842
    Longitude -121.63982
  ]
  node [
    id 8
    label "Goodnet PoP 8"
    Latitude 41.04648
    Longitude -112.84206
  ]
  node [
    id 9
    label "Goodnet PoP 9"
    Latitude 30.63007
    Longitude -79.47493
  ]
  node [
    id 10
    label "Goodnet PoP 10"
    Latitude 33.65884
    Longitude -112.48107
  ]
  node [
    id 11
    label "Goodnet PoP 11"
    Latitude 32.68287
    Longitude -121.19149
  ]
  node [
    id 12
    label "Goodnet PoP 12"
    Latitude 42.3663
    Longitude -112.63709
  ]
  node [
    id 13
    label "Goodnet PoP 13"
    Latitude 35.39013
    Longitude -79.15643
  ]
  node [
    id 14
    label "Goodnet PoP 14"
    Latitude 40.41588
    Longitude -89.70012
  ]
  node [
    id 15
    label "Goodnet PoP 15"
    Latitude 37.22131
    Longitude -119.84156
  ]
  node [
    id 16
    label "Goodnet PoP 16"
    Latitude 46.16154
    Longitude -86.94729
  ]
  edge [
    source 0
    target 1
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 15
  ]
  edge [
    source 0
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 1
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 3
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 6
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 8
  ]
  edge [
    source 6
    target 12
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 8
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 11
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 14
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 14
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Myren"
  directed 0
  node [
    id 0
    label "Myren PoP 0"
    Latitude 4.28596
    Longitude 114.15576
  ]
  node [
    id 1
    label "Myren PoP 1"
    Latitude 3.97585
    Longitude 104.94603
  ]
  node [
    id 2
    label "Myren PoP 2"
    Latitude 1.8015
    Longitude 104.49609
  ]
  node [
    id 3
    label "Myren PoP 3"
    Latitude 1.65794
    Longitude 110.22231
  ]
  node [
    id 4
    label "Myren PoP 4"
    Latitude 4.30243
    Longitude 107.85539
  ]
  node [
    id 5
    label "Myren PoP 5"
    Latitude 3.02411
    Longitude 100.51344
  ]
  node [
    id 6
    label "Myren PoP 6"
    Latitude 1.76394
    Longitude 114.33434
  ]
  node [
    id 7
    label "Myren PoP 7"
    Latitude 1.20257
    Longitude 105.47354
  ]
  node [
    id 8
    label "Myren PoP 8"
    Latitude 2.65158
    Longitude 106.28267
  ]
  node [
    id 9
    label "Myren PoP 9"
    Latitude 6.75284
    Longitude 104.41184
  ]
  node [
    id 10
    label "Myren PoP 10"
    Latitude 6.09599
    Longitude 109.72067
  ]
  node [
    id 11
    label "Myren PoP 11"
    Latitude 4.57397
    Longitude 101.02643
  ]
  node [
    id 12
    label "Myren PoP 12"
    Latitude 2.48186
    Longitude 107.50736
  ]
  node [
    id 13
    label "Myren PoP 13"
    Latitude 4.58824
    Longitude 110.40503
  ]
  node [
    id 14
    label "Myren PoP 14"
    Latitude 4.05784
    Longitude 106.13868
  ]
  node [
    id 15
    label "Myren PoP 15"
    Latitude 6.12359
    Longitude 103.21564
  ]
  node [
    id 16
    label "Myren PoP 16"
    Latitude 6.32046
    Longitude 116.86734
  ]
  node [
    id 17
    label "Myren PoP 17"
    Latitude 4.87106
    Longitude 108.56596
  ]
  node [
    id 18
    label "Myren PoP 18"
    Latitude 6.30247
    Longitude 117.07499
  ]
  node [
    id 19
    label "Myren PoP 19"
    Latitude 6.95938
    Longitude 114.54576
  ]
  node [
    id 20
    label "Myren PoP 20"
    Latitude 2.02873
    Longitude 110.17273
  ]
  node [
    id 21
    label "Myren PoP 21"
    Latitude 2.32567
    Longitude 114.21128
  ]
  node [
    id 22
    label "Myren PoP 22"
    Latitude 4.66771
    Longitude 109.18358
  ]
  node [
    id 23
    label "Myren PoP 23"
    Latitude 1.10308
    Longitude 104.0354
  ]
  node [
    id 24
    label "Myren PoP 24"
    Latitude 4.28834
    Longitude 117.26532
  ]
  node [
    id 25
    label "Myren PoP 25"
    Latitude 1.7752
    Longitude 103.20278
  ]
  node [
    id 26
    label "Myren PoP 26"
    Latitude 3.03989
    Longitude 109.10735
  ]
  node [
    id 27
    label "Myren PoP 27"
    Latitude 1.39683
    Longitude 115.32118
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 4
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 27
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 7
  ]
  edge [
    source 2
    target 3
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 11
  ]
  edge [
    source 6
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 10
  ]
  edge [
    source 6
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 25
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 19
  ]
  edge [
    source 16
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 25
  ]
  edge [
    source 22
    target 23
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

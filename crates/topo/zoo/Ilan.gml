Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Ilan"
  directed 0
  node [
    id 0
    label "Ilan PoP 0"
    Latitude 30.98249
    Longitude 35.5976
  ]
  node [
    id 1
    label "Ilan PoP 1"
    Latitude 30.35558
    Longitude 34.06696
  ]
  node [
    id 2
    label "Ilan PoP 2"
    Latitude 32.16439
    Longitude 34.07778
  ]
  node [
    id 3
    label "Ilan PoP 3"
    Latitude 30.24229
    Longitude 35.66843
  ]
  node [
    id 4
    label "Ilan PoP 4"
    Latitude 32.26323
    Longitude 34.41018
  ]
  node [
    id 5
    label "Ilan PoP 5"
    Latitude 32.72242
    Longitude 35.62674
  ]
  node [
    id 6
    label "Ilan PoP 6"
    Latitude 31.87077
    Longitude 34.483
  ]
  node [
    id 7
    label "Ilan PoP 7"
    Latitude 31.61454
    Longitude 34.6489
  ]
  node [
    id 8
    label "Ilan PoP 8"
    Latitude 32.74854
    Longitude 35.17185
  ]
  node [
    id 9
    label "Ilan PoP 9"
    Latitude 32.58764
    Longitude 35.27228
  ]
  node [
    id 10
    label "Ilan PoP 10"
    Latitude 32.78846
    Longitude 35.57786
  ]
  node [
    id 11
    label "Ilan PoP 11"
    Latitude 31.52147
    Longitude 35.91598
  ]
  node [
    id 12
    label "Ilan PoP 12"
    Latitude 32.30305
    Longitude 34.92188
  ]
  node [
    id 13
    label "Ilan PoP 13"
    Latitude 30.23689
    Longitude 34.23033
  ]
  edge [
    source 0
    target 1
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 4
  ]
  edge [
    source 0
    target 13
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 7
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Ibm"
  directed 0
  node [
    id 0
    label "Ibm PoP 0"
    Latitude 44.51548
    Longitude -90.55554
  ]
  node [
    id 1
    label "Ibm PoP 1"
    Latitude 36.48927
    Longitude -100.65081
  ]
  node [
    id 2
    label "Ibm PoP 2"
    Latitude 40.43496
    Longitude -91.84549
  ]
  node [
    id 3
    label "Ibm PoP 3"
    Latitude 36.57821
    Longitude -93.30559
  ]
  node [
    id 4
    label "Ibm PoP 4"
    Latitude 35.56589
    Longitude -76.26747
  ]
  node [
    id 5
    label "Ibm PoP 5"
    Latitude 36.54002
    Longitude -85.44818
  ]
  node [
    id 6
    label "Ibm PoP 6"
    Latitude 33.54989
    Longitude -96.35409
  ]
  node [
    id 7
    label "Ibm PoP 7"
    Latitude 36.53019
    Longitude -117.5708
  ]
  node [
    id 8
    label "Ibm PoP 8"
    Latitude 32.91182
    Longitude -86.44514
  ]
  node [
    id 9
    label "Ibm PoP 9"
    Latitude 38.72548
    Longitude -102.60749
  ]
  node [
    id 10
    label "Ibm PoP 10"
    Latitude 34.37693
    Longitude -94.57918
  ]
  node [
    id 11
    label "Ibm PoP 11"
    Latitude 30.67299
    Longitude -94.14091
  ]
  node [
    id 12
    label "Ibm PoP 12"
    Latitude 46.96968
    Longitude -102.27207
  ]
  node [
    id 13
    label "Ibm PoP 13"
    Latitude 30.62461
    Longitude -102.75173
  ]
  node [
    id 14
    label "Ibm PoP 14"
    Latitude 42.24072
    Longitude -111.60629
  ]
  node [
    id 15
    label "Ibm PoP 15"
    Latitude 40.692
    Longitude -105.77878
  ]
  node [
    id 16
    label "Ibm PoP 16"
    Latitude 39.22093
    Longitude -112.89043
  ]
  node [
    id 17
    label "Ibm PoP 17"
    Latitude 34.88381
    Longitude -90.94758
  ]
  edge [
    source 0
    target 1
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 2
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 6
  ]
  edge [
    source 3
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 12
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 9
  ]
  edge [
    source 6
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 11
    target 15
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 13
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "KentmanJan2011"
  directed 0
  node [
    id 0
    label "KentmanJan2011 PoP 0"
    Latitude -22.50693
    Longitude 148.68805
  ]
  node [
    id 1
    label "KentmanJan2011 PoP 1"
    Latitude -18.86358
    Longitude 146.4664
  ]
  node [
    id 2
    label "KentmanJan2011 PoP 2"
    Latitude -21.79897
    Longitude 141.20636
  ]
  node [
    id 3
    label "KentmanJan2011 PoP 3"
    Latitude -36.13312
    Longitude 143.08947
  ]
  node [
    id 4
    label "KentmanJan2011 PoP 4"
    Latitude -34.92984
    Longitude 139.91215
  ]
  node [
    id 5
    label "KentmanJan2011 PoP 5"
    Latitude -34.74516
    Longitude 128.33351
  ]
  node [
    id 6
    label "KentmanJan2011 PoP 6"
    Latitude -23.0217
    Longitude 118.59745
  ]
  node [
    id 7
    label "KentmanJan2011 PoP 7"
    Latitude -24.89469
    Longitude 147.19703
  ]
  node [
    id 8
    label "KentmanJan2011 PoP 8"
    Latitude -32.38664
    Longitude 145.97336
  ]
  node [
    id 9
    label "KentmanJan2011 PoP 9"
    Latitude -22.73332
    Longitude 127.34582
  ]
  node [
    id 10
    label "KentmanJan2011 PoP 10"
    Latitude -35.63026
    Longitude 124.6012
  ]
  node [
    id 11
    label "KentmanJan2011 PoP 11"
    Latitude -23.13816
    Longitude 125.19978
  ]
  node [
    id 12
    label "KentmanJan2011 PoP 12"
    Latitude -20.5452
    Longitude 132.73436
  ]
  node [
    id 13
    label "KentmanJan2011 PoP 13"
    Latitude -16.13072
    Longitude 117.58172
  ]
  node [
    id 14
    label "KentmanJan2011 PoP 14"
    Latitude -27.945
    Longitude 131.36973
  ]
  node [
    id 15
    label "KentmanJan2011 PoP 15"
    Latitude -16.14446
    Longitude 140.51981
  ]
  node [
    id 16
    label "KentmanJan2011 PoP 16"
    Latitude -36.03545
    Longitude 147.34297
  ]
  node [
    id 17
    label "KentmanJan2011 PoP 17"
    Latitude -31.8199
    Longitude 148.86342
  ]
  node [
    id 18
    label "KentmanJan2011 PoP 18"
    Latitude -27.1918
    Longitude 127.59211
  ]
  node [
    id 19
    label "KentmanJan2011 PoP 19"
    Latitude -18.94382
    Longitude 116.23309
  ]
  node [
    id 20
    label "KentmanJan2011 PoP 20"
    Latitude -29.20801
    Longitude 139.25981
  ]
  node [
    id 21
    label "KentmanJan2011 PoP 21"
    Latitude -29.72091
    Longitude 122.74813
  ]
  node [
    id 22
    label "KentmanJan2011 PoP 22"
    Latitude -36.11877
    Longitude 135.84193
  ]
  node [
    id 23
    label "KentmanJan2011 PoP 23"
    Latitude -17.44738
    Longitude 129.27006
  ]
  node [
    id 24
    label "KentmanJan2011 PoP 24"
    Latitude -29.35791
    Longitude 115.28622
  ]
  node [
    id 25
    label "KentmanJan2011 PoP 25"
    Latitude -26.05023
    Longitude 115.92503
  ]
  node [
    id 26
    label "KentmanJan2011 PoP 26"
    Latitude -31.18668
    Longitude 119.44228
  ]
  node [
    id 27
    label "KentmanJan2011 PoP 27"
    Latitude -26.03811
    Longitude 122.58786
  ]
  edge [
    source 0
    target 1
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 3
  ]
  edge [
    source 0
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 22
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 6
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 12
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 11
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 15
  ]
  edge [
    source 12
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 18
  ]
  edge [
    source 16
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 17
    target 18
  ]
  edge [
    source 18
    target 19
  ]
  edge [
    source 18
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 20
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 23
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 24
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Tinet"
  directed 0
  node [
    id 0
    label "Tinet PoP 0"
    Latitude 40.58994
    Longitude 0.26802
  ]
  node [
    id 1
    label "Tinet PoP 1"
    Latitude -11.75025
    Longitude -69.1303
  ]
  node [
    id 2
    label "Tinet PoP 2"
    Latitude 16.67809
    Longitude -40.73509
  ]
  node [
    id 3
    label "Tinet PoP 3"
    Latitude -26.25479
    Longitude -52.49165
  ]
  node [
    id 4
    label "Tinet PoP 4"
    Latitude -18.76485
    Longitude 93.64509
  ]
  node [
    id 5
    label "Tinet PoP 5"
    Latitude 40.93586
    Longitude -53.67692
  ]
  node [
    id 6
    label "Tinet PoP 6"
    Latitude 0.66322
    Longitude -82.30987
  ]
  node [
    id 7
    label "Tinet PoP 7"
    Latitude -23.84842
    Longitude -81.81626
  ]
  node [
    id 8
    label "Tinet PoP 8"
    Latitude 49.56902
    Longitude 49.30346
  ]
  node [
    id 9
    label "Tinet PoP 9"
    Latitude -18.42439
    Longitude 63.21325
  ]
  node [
    id 10
    label "Tinet PoP 10"
    Latitude 6.47522
    Longitude -17.7084
  ]
  node [
    id 11
    label "Tinet PoP 11"
    Latitude 13.07249
    Longitude 12.29379
  ]
  node [
    id 12
    label "Tinet PoP 12"
    Latitude -8.33044
    Longitude -80.92459
  ]
  node [
    id 13
    label "Tinet PoP 13"
    Latitude 9.11813
    Longitude -79.40121
  ]
  node [
    id 14
    label "Tinet PoP 14"
    Latitude 36.7371
    Longitude 94.47477
  ]
  node [
    id 15
    label "Tinet PoP 15"
    Latitude 29.58569
    Longitude 21.31262
  ]
  node [
    id 16
    label "Tinet PoP 16"
    Latitude 51.8703
    Longitude 104.03556
  ]
  node [
    id 17
    label "Tinet PoP 17"
    Latitude 30.24233
    Longitude 73.48432
  ]
  node [
    id 18
    label "Tinet PoP 18"
    Latitude -5.29162
    Longitude -51.89401
  ]
  node [
    id 19
    label "Tinet PoP 19"
    Latitude -2.27449
    Longitude -25.76181
  ]
  node [
    id 20
    label "Tinet PoP 20"
    Latitude 19.62204
    Longitude -42.20255
  ]
  node [
    id 21
    label "Tinet PoP 21"
    Latitude -0.05109
    Longitude 30.23622
  ]
  node [
    id 22
    label "Tinet PoP 22"
    Latitude -5.9871
    Longitude 91.53964
  ]
  node [
    id 23
    label "Tinet PoP 23"
    Latitude 17.32003
    Longitude 22.7791
  ]
  node [
    id 24
    label "Tinet PoP 24"
    Latitude 2.20593
    Longitude 47.4056
  ]
  node [
    id 25
    label "Tinet PoP 25"
    Latitude 52.48462
    Longitude -95.44917
  ]
  node [
    id 26
    label "Tinet PoP 26"
    Latitude 52.8374
    Longitude 123.4102
  ]
  node [
    id 27
    label "Tinet PoP 27"
    Latitude 2.63179
    Longitude -25.93033
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 15
  ]
  edge [
    source 0
    target 18
  ]
  edge [
    source 0
    target 27
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 19
  ]
  edge [
    source 6
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 9
    target 10
  ]
  edge [
    source 9
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 21
  ]
  edge [
    source 11
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 15
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 20
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 22
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Ntelos"
  directed 0
  node [
    id 0
    label "Ntelos PoP 0"
    Latitude 33.59379
    Longitude -120.84909
  ]
  node [
    id 1
    label "Ntelos PoP 1"
    Latitude 40.27944
    Longitude -76.29526
  ]
  node [
    id 2
    label "Ntelos PoP 2"
    Latitude 32.73342
    Longitude -77.15801
  ]
  node [
    id 3
    label "Ntelos PoP 3"
    Latitude 42.12156
    Longitude -96.77112
  ]
  node [
    id 4
    label "Ntelos PoP 4"
    Latitude 45.634
    Longitude -101.61859
  ]
  node [
    id 5
    label "Ntelos PoP 5"
    Latitude 36.25008
    Longitude -76.8906
  ]
  node [
    id 6
    label "Ntelos PoP 6"
    Latitude 43.81702
    Longitude -110.98799
  ]
  node [
    id 7
    label "Ntelos PoP 7"
    Latitude 34.45853
    Longitude -77.69392
  ]
  node [
    id 8
    label "Ntelos PoP 8"
    Latitude 42.01103
    Longitude -94.6778
  ]
  node [
    id 9
    label "Ntelos PoP 9"
    Latitude 45.57477
    Longitude -88.08705
  ]
  node [
    id 10
    label "Ntelos PoP 10"
    Latitude 43.70385
    Longitude -91.73166
  ]
  node [
    id 11
    label "Ntelos PoP 11"
    Latitude 37.94817
    Longitude -95.83499
  ]
  node [
    id 12
    label "Ntelos PoP 12"
    Latitude 43.46183
    Longitude -84.92173
  ]
  node [
    id 13
    label "Ntelos PoP 13"
    Latitude 36.89191
    Longitude -103.78443
  ]
  node [
    id 14
    label "Ntelos PoP 14"
    Latitude 36.07804
    Longitude -99.08407
  ]
  node [
    id 15
    label "Ntelos PoP 15"
    Latitude 41.33393
    Longitude -87.0586
  ]
  node [
    id 16
    label "Ntelos PoP 16"
    Latitude 33.49074
    Longitude -99.70934
  ]
  node [
    id 17
    label "Ntelos PoP 17"
    Latitude 40.13159
    Longitude -76.79689
  ]
  node [
    id 18
    label "Ntelos PoP 18"
    Latitude 44.70131
    Longitude -91.44025
  ]
  node [
    id 19
    label "Ntelos PoP 19"
    Latitude 37.0821
    Longitude -105.84271
  ]
  node [
    id 20
    label "Ntelos PoP 20"
    Latitude 35.20435
    Longitude -92.51814
  ]
  node [
    id 21
    label "Ntelos PoP 21"
    Latitude 32.25665
    Longitude -94.50452
  ]
  node [
    id 22
    label "Ntelos PoP 22"
    Latitude 38.47156
    Longitude -80.56306
  ]
  node [
    id 23
    label "Ntelos PoP 23"
    Latitude 31.17382
    Longitude -121.19771
  ]
  node [
    id 24
    label "Ntelos PoP 24"
    Latitude 30.84843
    Longitude -107.69506
  ]
  node [
    id 25
    label "Ntelos PoP 25"
    Latitude 34.68066
    Longitude -119.92415
  ]
  node [
    id 26
    label "Ntelos PoP 26"
    Latitude 33.89666
    Longitude -110.02344
  ]
  node [
    id 27
    label "Ntelos PoP 27"
    Latitude 35.7121
    Longitude -120.60287
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 11
  ]
  edge [
    source 0
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 8
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 16
  ]
  edge [
    source 3
    target 18
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
  ]
  edge [
    source 7
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 24
  ]
  edge [
    source 8
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 19
  ]
  edge [
    source 9
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 10
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 25
  ]
  edge [
    source 12
    target 27
  ]
  edge [
    source 13
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 13
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 13
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 24
    target 25
  ]
  edge [
    source 25
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 26
    target 27
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Palmetto"
  directed 0
  node [
    id 0
    label "Palmetto PoP 0"
    Latitude 31.94495
    Longitude -96.11386
  ]
  node [
    id 1
    label "Palmetto PoP 1"
    Latitude 33.46298
    Longitude -74.7252
  ]
  node [
    id 2
    label "Palmetto PoP 2"
    Latitude 34.55611
    Longitude -106.93421
  ]
  node [
    id 3
    label "Palmetto PoP 3"
    Latitude 32.25535
    Longitude -84.05178
  ]
  node [
    id 4
    label "Palmetto PoP 4"
    Latitude 40.78868
    Longitude -75.59216
  ]
  node [
    id 5
    label "Palmetto PoP 5"
    Latitude 35.91786
    Longitude -102.93134
  ]
  node [
    id 6
    label "Palmetto PoP 6"
    Latitude 41.95879
    Longitude -96.19504
  ]
  node [
    id 7
    label "Palmetto PoP 7"
    Latitude 39.79582
    Longitude -83.98848
  ]
  node [
    id 8
    label "Palmetto PoP 8"
    Latitude 42.60077
    Longitude -114.23505
  ]
  node [
    id 9
    label "Palmetto PoP 9"
    Latitude 43.09861
    Longitude -97.04142
  ]
  node [
    id 10
    label "Palmetto PoP 10"
    Latitude 35.94792
    Longitude -91.50709
  ]
  node [
    id 11
    label "Palmetto PoP 11"
    Latitude 41.7795
    Longitude -77.33837
  ]
  node [
    id 12
    label "Palmetto PoP 12"
    Latitude 38.3132
    Longitude -91.25644
  ]
  node [
    id 13
    label "Palmetto PoP 13"
    Latitude 40.36831
    Longitude -80.06783
  ]
  node [
    id 14
    label "Palmetto PoP 14"
    Latitude 35.27418
    Longitude -111.68513
  ]
  node [
    id 15
    label "Palmetto PoP 15"
    Latitude 42.40603
    Longitude -87.02642
  ]
  node [
    id 16
    label "Palmetto PoP 16"
    Latitude 34.19717
    Longitude -109.09493
  ]
  node [
    id 17
    label "Palmetto PoP 17"
    Latitude 32.65392
    Longitude -78.27388
  ]
  node [
    id 18
    label "Palmetto PoP 18"
    Latitude 30.0761
    Longitude -75.51323
  ]
  node [
    id 19
    label "Palmetto PoP 19"
    Latitude 42.17294
    Longitude -84.41527
  ]
  node [
    id 20
    label "Palmetto PoP 20"
    Latitude 43.78619
    Longitude -118.1022
  ]
  node [
    id 21
    label "Palmetto PoP 21"
    Latitude 41.02406
    Longitude -79.52665
  ]
  node [
    id 22
    label "Palmetto PoP 22"
    Latitude 33.8407
    Longitude -91.70294
  ]
  node [
    id 23
    label "Palmetto PoP 23"
    Latitude 45.19209
    Longitude -120.80172
  ]
  node [
    id 24
    label "Palmetto PoP 24"
    Latitude 42.54177
    Longitude -101.45381
  ]
  node [
    id 25
    label "Palmetto PoP 25"
    Latitude 38.07669
    Longitude -107.2547
  ]
  node [
    id 26
    label "Palmetto PoP 26"
    Latitude 46.39817
    Longitude -86.05957
  ]
  node [
    id 27
    label "Palmetto PoP 27"
    Latitude 31.7915
    Longitude -103.37772
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 3
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 7
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 27
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 13
  ]
  edge [
    source 6
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 7
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 11
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 25
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 22
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 24
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
]

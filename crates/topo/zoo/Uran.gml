Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Uran"
  directed 0
  node [
    id 0
    label "Uran PoP 0"
    Latitude 44.51892
    Longitude -6.65872
  ]
  node [
    id 1
    label "Uran PoP 1"
    Latitude 58.12653
    Longitude 14.7815
  ]
  node [
    id 2
    label "Uran PoP 2"
    Latitude 56.53907
    Longitude 14.93159
  ]
  node [
    id 3
    label "Uran PoP 3"
    Latitude 41.67621
    Longitude 7.81412
  ]
  node [
    id 4
    label "Uran PoP 4"
    Latitude 57.3134
    Longitude 1.13767
  ]
  node [
    id 5
    label "Uran PoP 5"
    Latitude 57.21654
    Longitude 4.33598
  ]
  node [
    id 6
    label "Uran PoP 6"
    Latitude 50.55666
    Longitude 15.24428
  ]
  node [
    id 7
    label "Uran PoP 7"
    Latitude 58.97258
    Longitude 17.31838
  ]
  node [
    id 8
    label "Uran PoP 8"
    Latitude 51.13327
    Longitude -0.75388
  ]
  node [
    id 9
    label "Uran PoP 9"
    Latitude 57.70901
    Longitude 6.40912
  ]
  node [
    id 10
    label "Uran PoP 10"
    Latitude 47.97814
    Longitude -4.33643
  ]
  node [
    id 11
    label "Uran PoP 11"
    Latitude 40.14888
    Longitude -2.49396
  ]
  node [
    id 12
    label "Uran PoP 12"
    Latitude 49.5046
    Longitude -5.96276
  ]
  node [
    id 13
    label "Uran PoP 13"
    Latitude 49.87166
    Longitude 6.69511
  ]
  node [
    id 14
    label "Uran PoP 14"
    Latitude 59.51125
    Longitude -1.28111
  ]
  node [
    id 15
    label "Uran PoP 15"
    Latitude 41.80747
    Longitude 8.14691
  ]
  node [
    id 16
    label "Uran PoP 16"
    Latitude 51.63253
    Longitude 21.42765
  ]
  node [
    id 17
    label "Uran PoP 17"
    Latitude 44.93128
    Longitude -8.15065
  ]
  node [
    id 18
    label "Uran PoP 18"
    Latitude 41.57222
    Longitude 10.81891
  ]
  node [
    id 19
    label "Uran PoP 19"
    Latitude 55.74595
    Longitude -6.56904
  ]
  node [
    id 20
    label "Uran PoP 20"
    Latitude 57.94685
    Longitude 17.27283
  ]
  node [
    id 21
    label "Uran PoP 21"
    Latitude 49.04778
    Longitude 5.18051
  ]
  node [
    id 22
    label "Uran PoP 22"
    Latitude 53.76287
    Longitude 18.46154
  ]
  node [
    id 23
    label "Uran PoP 23"
    Latitude 38.05715
    Longitude 17.70763
  ]
  edge [
    source 0
    target 1
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 7
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 11
  ]
  edge [
    source 0
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 10
  ]
  edge [
    source 3
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 22
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 11
  ]
  edge [
    source 8
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 10
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 19
  ]
  edge [
    source 12
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 16
  ]
  edge [
    source 15
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

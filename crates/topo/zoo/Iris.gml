Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Iris"
  directed 0
  node [
    id 0
    label "Iris PoP 0"
    Latitude 41.2225
    Longitude -78.18911
  ]
  node [
    id 1
    label "Iris PoP 1"
    Latitude 35.75244
    Longitude -109.54647
  ]
  node [
    id 2
    label "Iris PoP 2"
    Latitude 46.72522
    Longitude -85.26403
  ]
  node [
    id 3
    label "Iris PoP 3"
    Latitude 40.15915
    Longitude -93.82155
  ]
  node [
    id 4
    label "Iris PoP 4"
    Latitude 41.93944
    Longitude -88.99926
  ]
  node [
    id 5
    label "Iris PoP 5"
    Latitude 33.85501
    Longitude -96.47341
  ]
  node [
    id 6
    label "Iris PoP 6"
    Latitude 34.92735
    Longitude -102.25119
  ]
  node [
    id 7
    label "Iris PoP 7"
    Latitude 30.52264
    Longitude -99.32271
  ]
  node [
    id 8
    label "Iris PoP 8"
    Latitude 36.62653
    Longitude -116.43829
  ]
  node [
    id 9
    label "Iris PoP 9"
    Latitude 43.08015
    Longitude -103.80344
  ]
  node [
    id 10
    label "Iris PoP 10"
    Latitude 44.72002
    Longitude -94.50671
  ]
  node [
    id 11
    label "Iris PoP 11"
    Latitude 31.14408
    Longitude -109.40994
  ]
  node [
    id 12
    label "Iris PoP 12"
    Latitude 34.35662
    Longitude -74.60246
  ]
  node [
    id 13
    label "Iris PoP 13"
    Latitude 30.31755
    Longitude -90.66511
  ]
  node [
    id 14
    label "Iris PoP 14"
    Latitude 33.20711
    Longitude -76.7179
  ]
  node [
    id 15
    label "Iris PoP 15"
    Latitude 34.95601
    Longitude -102.51471
  ]
  node [
    id 16
    label "Iris PoP 16"
    Latitude 32.54498
    Longitude -116.6783
  ]
  node [
    id 17
    label "Iris PoP 17"
    Latitude 41.36153
    Longitude -102.5997
  ]
  node [
    id 18
    label "Iris PoP 18"
    Latitude 41.21973
    Longitude -83.96492
  ]
  node [
    id 19
    label "Iris PoP 19"
    Latitude 42.53858
    Longitude -76.05148
  ]
  node [
    id 20
    label "Iris PoP 20"
    Latitude 44.44252
    Longitude -117.99115
  ]
  node [
    id 21
    label "Iris PoP 21"
    Latitude 45.76412
    Longitude -102.85145
  ]
  node [
    id 22
    label "Iris PoP 22"
    Latitude 46.97363
    Longitude -113.41591
  ]
  node [
    id 23
    label "Iris PoP 23"
    Latitude 41.81651
    Longitude -111.6893
  ]
  node [
    id 24
    label "Iris PoP 24"
    Latitude 45.11301
    Longitude -105.23576
  ]
  node [
    id 25
    label "Iris PoP 25"
    Latitude 41.08396
    Longitude -95.78442
  ]
  node [
    id 26
    label "Iris PoP 26"
    Latitude 39.12942
    Longitude -75.43944
  ]
  node [
    id 27
    label "Iris PoP 27"
    Latitude 33.59202
    Longitude -77.16016
  ]
  edge [
    source 0
    target 1
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 2
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 14
  ]
  edge [
    source 5
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 24
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 21
  ]
  edge [
    source 7
    target 8
  ]
  edge [
    source 7
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 27
  ]
  edge [
    source 12
    target 13
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 25
  ]
  edge [
    source 12
    target 27
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 27
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 17
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

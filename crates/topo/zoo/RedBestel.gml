Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "RedBestel"
  directed 0
  node [
    id 0
    label "RedBestel PoP 0"
    Latitude 22.93202
    Longitude -103.41237
  ]
  node [
    id 1
    label "RedBestel PoP 1"
    Latitude 24.06539
    Longitude -106.83857
  ]
  node [
    id 2
    label "RedBestel PoP 2"
    Latitude 28.31816
    Longitude -92.0822
  ]
  node [
    id 3
    label "RedBestel PoP 3"
    Latitude 16.29689
    Longitude -88.99634
  ]
  node [
    id 4
    label "RedBestel PoP 4"
    Latitude 21.28628
    Longitude -91.08929
  ]
  node [
    id 5
    label "RedBestel PoP 5"
    Latitude 24.90243
    Longitude -92.51467
  ]
  node [
    id 6
    label "RedBestel PoP 6"
    Latitude 28.86427
    Longitude -105.16307
  ]
  node [
    id 7
    label "RedBestel PoP 7"
    Latitude 18.71768
    Longitude -92.22701
  ]
  node [
    id 8
    label "RedBestel PoP 8"
    Latitude 20.71749
    Longitude -101.08216
  ]
  node [
    id 9
    label "RedBestel PoP 9"
    Latitude 26.9597
    Longitude -99.96156
  ]
  node [
    id 10
    label "RedBestel PoP 10"
    Latitude 19.76893
    Longitude -100.31513
  ]
  node [
    id 11
    label "RedBestel PoP 11"
    Latitude 30.49668
    Longitude -112.70136
  ]
  node [
    id 12
    label "RedBestel PoP 12"
    Latitude 24.05974
    Longitude -110.93715
  ]
  node [
    id 13
    label "RedBestel PoP 13"
    Latitude 28.42625
    Longitude -104.2277
  ]
  node [
    id 14
    label "RedBestel PoP 14"
    Latitude 29.00743
    Longitude -91.73962
  ]
  node [
    id 15
    label "RedBestel PoP 15"
    Latitude 19.76919
    Longitude -105.91478
  ]
  node [
    id 16
    label "RedBestel PoP 16"
    Latitude 23.75462
    Longitude -101.18465
  ]
  node [
    id 17
    label "RedBestel PoP 17"
    Latitude 16.40184
    Longitude -91.48508
  ]
  node [
    id 18
    label "RedBestel PoP 18"
    Latitude 26.09136
    Longitude -100.6878
  ]
  node [
    id 19
    label "RedBestel PoP 19"
    Latitude 22.95008
    Longitude -95.87944
  ]
  node [
    id 20
    label "RedBestel PoP 20"
    Latitude 16.23675
    Longitude -92.43649
  ]
  node [
    id 21
    label "RedBestel PoP 21"
    Latitude 27.86531
    Longitude -106.3386
  ]
  node [
    id 22
    label "RedBestel PoP 22"
    Latitude 27.90365
    Longitude -106.93473
  ]
  node [
    id 23
    label "RedBestel PoP 23"
    Latitude 16.4334
    Longitude -100.17906
  ]
  node [
    id 24
    label "RedBestel PoP 24"
    Latitude 17.83899
    Longitude -101.12918
  ]
  node [
    id 25
    label "RedBestel PoP 25"
    Latitude 30.84494
    Longitude -94.48884
  ]
  node [
    id 26
    label "RedBestel PoP 26"
    Latitude 23.85759
    Longitude -99.48312
  ]
  node [
    id 27
    label "RedBestel PoP 27"
    Latitude 23.01635
    Longitude -105.1907
  ]
  edge [
    source 0
    target 1
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 2
  ]
  edge [
    source 0
    target 5
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 11
  ]
  edge [
    source 0
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 1
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 2
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 27
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 8
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
  ]
  edge [
    source 9
    target 14
  ]
  edge [
    source 9
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 10
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 16
  ]
  edge [
    source 15
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 21
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Globenet"
  directed 0
  node [
    id 0
    label "Globenet PoP 0"
    Latitude -15.09082
    Longitude 16.73092
  ]
  node [
    id 1
    label "Globenet PoP 1"
    Latitude 32.64162
    Longitude -72.02346
  ]
  node [
    id 2
    label "Globenet PoP 2"
    Latitude -19.67961
    Longitude -4.39289
  ]
  node [
    id 3
    label "Globenet PoP 3"
    Latitude 52.11837
    Longitude 37.26681
  ]
  node [
    id 4
    label "Globenet PoP 4"
    Latitude 21.41548
    Longitude 39.83318
  ]
  node [
    id 5
    label "Globenet PoP 5"
    Latitude 24.09169
    Longitude 119.76425
  ]
  node [
    id 6
    label "Globenet PoP 6"
    Latitude -20.70179
    Longitude -59.00883
  ]
  node [
    id 7
    label "Globenet PoP 7"
    Latitude -25.04734
    Longitude -65.51475
  ]
  node [
    id 8
    label "Globenet PoP 8"
    Latitude 17.37135
    Longitude -38.33517
  ]
  node [
    id 9
    label "Globenet PoP 9"
    Latitude 33.72354
    Longitude -111.59585
  ]
  node [
    id 10
    label "Globenet PoP 10"
    Latitude 52.94642
    Longitude -58.32848
  ]
  node [
    id 11
    label "Globenet PoP 11"
    Latitude 17.45169
    Longitude 12.46201
  ]
  node [
    id 12
    label "Globenet PoP 12"
    Latitude 34.86994
    Longitude -1.46861
  ]
  node [
    id 13
    label "Globenet PoP 13"
    Latitude -26.62535
    Longitude -10.45394
  ]
  node [
    id 14
    label "Globenet PoP 14"
    Latitude 22.82185
    Longitude 118.69845
  ]
  node [
    id 15
    label "Globenet PoP 15"
    Latitude -10.2701
    Longitude -41.34405
  ]
  node [
    id 16
    label "Globenet PoP 16"
    Latitude 50.35092
    Longitude -98.1159
  ]
  node [
    id 17
    label "Globenet PoP 17"
    Latitude 40.23177
    Longitude 30.0774
  ]
  node [
    id 18
    label "Globenet PoP 18"
    Latitude -0.03552
    Longitude -52.84743
  ]
  node [
    id 19
    label "Globenet PoP 19"
    Latitude 22.20178
    Longitude 100.65637
  ]
  node [
    id 20
    label "Globenet PoP 20"
    Latitude -22.56766
    Longitude 91.97684
  ]
  node [
    id 21
    label "Globenet PoP 21"
    Latitude -23.03836
    Longitude 79.37443
  ]
  node [
    id 22
    label "Globenet PoP 22"
    Latitude 37.93145
    Longitude 113.29941
  ]
  node [
    id 23
    label "Globenet PoP 23"
    Latitude 35.77015
    Longitude 124.62556
  ]
  node [
    id 24
    label "Globenet PoP 24"
    Latitude -1.15125
    Longitude -70.88863
  ]
  node [
    id 25
    label "Globenet PoP 25"
    Latitude 44.42876
    Longitude 30.12264
  ]
  node [
    id 26
    label "Globenet PoP 26"
    Latitude 9.23154
    Longitude 137.96305
  ]
  node [
    id 27
    label "Globenet PoP 27"
    Latitude -3.67
    Longitude 4.87608
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 24
  ]
  edge [
    source 2
    target 3
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 6
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 8
  ]
  edge [
    source 3
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 24
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 8
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 12
    target 13
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 21
  ]
  edge [
    source 13
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 17
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 27
  ]
  edge [
    source 19
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 23
    target 24
  ]
  edge [
    source 24
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

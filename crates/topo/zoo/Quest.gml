Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Quest"
  directed 0
  node [
    id 0
    label "Quest PoP 0"
    Latitude 37.43047
    Longitude -116.58691
  ]
  node [
    id 1
    label "Quest PoP 1"
    Latitude 38.46832
    Longitude -109.82473
  ]
  node [
    id 2
    label "Quest PoP 2"
    Latitude 34.57568
    Longitude -93.06996
  ]
  node [
    id 3
    label "Quest PoP 3"
    Latitude 38.16838
    Longitude -121.55007
  ]
  node [
    id 4
    label "Quest PoP 4"
    Latitude 40.49596
    Longitude -85.82533
  ]
  node [
    id 5
    label "Quest PoP 5"
    Latitude 33.34291
    Longitude -90.18056
  ]
  node [
    id 6
    label "Quest PoP 6"
    Latitude 40.49181
    Longitude -98.13364
  ]
  node [
    id 7
    label "Quest PoP 7"
    Latitude 38.38737
    Longitude -102.628
  ]
  node [
    id 8
    label "Quest PoP 8"
    Latitude 42.44444
    Longitude -76.52417
  ]
  node [
    id 9
    label "Quest PoP 9"
    Latitude 42.18887
    Longitude -90.18289
  ]
  node [
    id 10
    label "Quest PoP 10"
    Latitude 33.22244
    Longitude -84.64699
  ]
  node [
    id 11
    label "Quest PoP 11"
    Latitude 38.97347
    Longitude -98.33403
  ]
  node [
    id 12
    label "Quest PoP 12"
    Latitude 46.21864
    Longitude -84.96269
  ]
  node [
    id 13
    label "Quest PoP 13"
    Latitude 38.3171
    Longitude -89.92465
  ]
  node [
    id 14
    label "Quest PoP 14"
    Latitude 40.29319
    Longitude -79.10622
  ]
  node [
    id 15
    label "Quest PoP 15"
    Latitude 34.82314
    Longitude -110.37793
  ]
  node [
    id 16
    label "Quest PoP 16"
    Latitude 46.09546
    Longitude -77.06187
  ]
  node [
    id 17
    label "Quest PoP 17"
    Latitude 36.32649
    Longitude -109.63337
  ]
  node [
    id 18
    label "Quest PoP 18"
    Latitude 37.33952
    Longitude -90.97243
  ]
  node [
    id 19
    label "Quest PoP 19"
    Latitude 33.03737
    Longitude -83.16126
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 3
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 17
  ]
  edge [
    source 0
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 2
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 5
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 9
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 19
  ]
  edge [
    source 13
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 19
  ]
]

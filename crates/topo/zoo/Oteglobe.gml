Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Oteglobe"
  directed 0
  node [
    id 0
    label "Oteglobe PoP 0"
    Latitude 43.53226
    Longitude 16.77835
  ]
  node [
    id 1
    label "Oteglobe PoP 1"
    Latitude 51.81893
    Longitude -7.65481
  ]
  node [
    id 2
    label "Oteglobe PoP 2"
    Latitude 51.45483
    Longitude 20.84077
  ]
  node [
    id 3
    label "Oteglobe PoP 3"
    Latitude 51.90475
    Longitude 8.92192
  ]
  node [
    id 4
    label "Oteglobe PoP 4"
    Latitude 57.28908
    Longitude -7.61161
  ]
  node [
    id 5
    label "Oteglobe PoP 5"
    Latitude 55.89173
    Longitude 13.36934
  ]
  node [
    id 6
    label "Oteglobe PoP 6"
    Latitude 52.36702
    Longitude 5.11617
  ]
  node [
    id 7
    label "Oteglobe PoP 7"
    Latitude 58.39035
    Longitude 0.06495
  ]
  node [
    id 8
    label "Oteglobe PoP 8"
    Latitude 43.86028
    Longitude 11.4687
  ]
  node [
    id 9
    label "Oteglobe PoP 9"
    Latitude 59.67965
    Longitude 8.65743
  ]
  node [
    id 10
    label "Oteglobe PoP 10"
    Latitude 43.54583
    Longitude 8.87644
  ]
  node [
    id 11
    label "Oteglobe PoP 11"
    Latitude 48.50677
    Longitude 22.58565
  ]
  node [
    id 12
    label "Oteglobe PoP 12"
    Latitude 51.1897
    Longitude 2.47239
  ]
  node [
    id 13
    label "Oteglobe PoP 13"
    Latitude 59.2988
    Longitude 0.01195
  ]
  node [
    id 14
    label "Oteglobe PoP 14"
    Latitude 38.58918
    Longitude 17.92262
  ]
  node [
    id 15
    label "Oteglobe PoP 15"
    Latitude 41.12167
    Longitude -6.25349
  ]
  node [
    id 16
    label "Oteglobe PoP 16"
    Latitude 46.56059
    Longitude 21.3791
  ]
  node [
    id 17
    label "Oteglobe PoP 17"
    Latitude 39.16951
    Longitude 15.25628
  ]
  node [
    id 18
    label "Oteglobe PoP 18"
    Latitude 53.01961
    Longitude 20.64059
  ]
  node [
    id 19
    label "Oteglobe PoP 19"
    Latitude 54.76953
    Longitude 9.18535
  ]
  node [
    id 20
    label "Oteglobe PoP 20"
    Latitude 44.67428
    Longitude 6.38133
  ]
  node [
    id 21
    label "Oteglobe PoP 21"
    Latitude 44.88782
    Longitude 20.14715
  ]
  node [
    id 22
    label "Oteglobe PoP 22"
    Latitude 53.53886
    Longitude 16.77636
  ]
  node [
    id 23
    label "Oteglobe PoP 23"
    Latitude 43.6418
    Longitude 22.34464
  ]
  node [
    id 24
    label "Oteglobe PoP 24"
    Latitude 42.23978
    Longitude -0.67451
  ]
  node [
    id 25
    label "Oteglobe PoP 25"
    Latitude 53.50353
    Longitude 18.84962
  ]
  node [
    id 26
    label "Oteglobe PoP 26"
    Latitude 49.10095
    Longitude 3.96786
  ]
  node [
    id 27
    label "Oteglobe PoP 27"
    Latitude 40.58008
    Longitude -8.45832
  ]
  edge [
    source 0
    target 1
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 10
  ]
  edge [
    source 0
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 6
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 18
  ]
  edge [
    source 6
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 17
  ]
  edge [
    source 8
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 11
    target 20
  ]
  edge [
    source 11
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 24
  ]
  edge [
    source 13
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 21
  ]
  edge [
    source 15
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 16
    target 25
  ]
  edge [
    source 17
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 21
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

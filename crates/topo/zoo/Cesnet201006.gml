Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Cesnet201006"
  directed 0
  node [
    id 0
    label "Cesnet201006 PoP 0"
    Latitude 56.08814
    Longitude 2.79826
  ]
  node [
    id 1
    label "Cesnet201006 PoP 1"
    Latitude 40.23653
    Longitude 22.49959
  ]
  node [
    id 2
    label "Cesnet201006 PoP 2"
    Latitude 46.7052
    Longitude 5.36089
  ]
  node [
    id 3
    label "Cesnet201006 PoP 3"
    Latitude 45.93643
    Longitude 5.61356
  ]
  node [
    id 4
    label "Cesnet201006 PoP 4"
    Latitude 59.77003
    Longitude -0.83143
  ]
  node [
    id 5
    label "Cesnet201006 PoP 5"
    Latitude 49.11362
    Longitude 24.14071
  ]
  node [
    id 6
    label "Cesnet201006 PoP 6"
    Latitude 50.44679
    Longitude 20.2355
  ]
  node [
    id 7
    label "Cesnet201006 PoP 7"
    Latitude 51.9412
    Longitude 22.05642
  ]
  node [
    id 8
    label "Cesnet201006 PoP 8"
    Latitude 39.92108
    Longitude -4.52348
  ]
  node [
    id 9
    label "Cesnet201006 PoP 9"
    Latitude 42.57636
    Longitude 22.12294
  ]
  node [
    id 10
    label "Cesnet201006 PoP 10"
    Latitude 52.99101
    Longitude -5.58669
  ]
  node [
    id 11
    label "Cesnet201006 PoP 11"
    Latitude 58.61045
    Longitude 22.49377
  ]
  node [
    id 12
    label "Cesnet201006 PoP 12"
    Latitude 42.05015
    Longitude 9.40041
  ]
  node [
    id 13
    label "Cesnet201006 PoP 13"
    Latitude 46.73011
    Longitude 20.66225
  ]
  node [
    id 14
    label "Cesnet201006 PoP 14"
    Latitude 44.61807
    Longitude 13.40968
  ]
  node [
    id 15
    label "Cesnet201006 PoP 15"
    Latitude 44.37291
    Longitude -4.32008
  ]
  node [
    id 16
    label "Cesnet201006 PoP 16"
    Latitude 47.2609
    Longitude -8.93686
  ]
  node [
    id 17
    label "Cesnet201006 PoP 17"
    Latitude 48.52375
    Longitude -4.40602
  ]
  node [
    id 18
    label "Cesnet201006 PoP 18"
    Latitude 43.15165
    Longitude 21.54153
  ]
  node [
    id 19
    label "Cesnet201006 PoP 19"
    Latitude 46.89654
    Longitude 2.23676
  ]
  node [
    id 20
    label "Cesnet201006 PoP 20"
    Latitude 48.64693
    Longitude 15.35016
  ]
  node [
    id 21
    label "Cesnet201006 PoP 21"
    Latitude 57.02694
    Longitude 10.86595
  ]
  node [
    id 22
    label "Cesnet201006 PoP 22"
    Latitude 44.36591
    Longitude 24.93114
  ]
  node [
    id 23
    label "Cesnet201006 PoP 23"
    Latitude 58.51939
    Longitude -3.86961
  ]
  node [
    id 24
    label "Cesnet201006 PoP 24"
    Latitude 40.96054
    Longitude 13.37872
  ]
  node [
    id 25
    label "Cesnet201006 PoP 25"
    Latitude 40.09976
    Longitude -2.35552
  ]
  node [
    id 26
    label "Cesnet201006 PoP 26"
    Latitude 56.21408
    Longitude -2.95106
  ]
  node [
    id 27
    label "Cesnet201006 PoP 27"
    Latitude 39.27042
    Longitude 1.76599
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 8
  ]
  edge [
    source 0
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 3
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 19
  ]
  edge [
    source 6
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 7
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 22
  ]
  edge [
    source 9
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 17
    target 18
  ]
  edge [
    source 18
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 20
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 23
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Sanet"
  directed 0
  node [
    id 0
    label "Sanet PoP 0"
    Latitude 51.06983
    Longitude 4.85461
  ]
  node [
    id 1
    label "Sanet PoP 1"
    Latitude 57.35213
    Longitude 7.4049
  ]
  node [
    id 2
    label "Sanet PoP 2"
    Latitude 39.83876
    Longitude -4.75603
  ]
  node [
    id 3
    label "Sanet PoP 3"
    Latitude 45.69023
    Longitude 14.15193
  ]
  node [
    id 4
    label "Sanet PoP 4"
    Latitude 43.93337
    Longitude 22.91316
  ]
  node [
    id 5
    label "Sanet PoP 5"
    Latitude 45.22666
    Longitude 17.77181
  ]
  node [
    id 6
    label "Sanet PoP 6"
    Latitude 58.63221
    Longitude 16.33596
  ]
  node [
    id 7
    label "Sanet PoP 7"
    Latitude 55.79466
    Longitude 22.22401
  ]
  node [
    id 8
    label "Sanet PoP 8"
    Latitude 39.11518
    Longitude 24.62128
  ]
  node [
    id 9
    label "Sanet PoP 9"
    Latitude 42.06725
    Longitude 11.52521
  ]
  node [
    id 10
    label "Sanet PoP 10"
    Latitude 50.1845
    Longitude 24.86558
  ]
  node [
    id 11
    label "Sanet PoP 11"
    Latitude 52.19181
    Longitude -3.62644
  ]
  node [
    id 12
    label "Sanet PoP 12"
    Latitude 41.94295
    Longitude 24.6923
  ]
  node [
    id 13
    label "Sanet PoP 13"
    Latitude 39.18671
    Longitude 18.95745
  ]
  node [
    id 14
    label "Sanet PoP 14"
    Latitude 57.77234
    Longitude 18.08055
  ]
  node [
    id 15
    label "Sanet PoP 15"
    Latitude 56.58235
    Longitude -8.43795
  ]
  node [
    id 16
    label "Sanet PoP 16"
    Latitude 43.0112
    Longitude 0.00404
  ]
  node [
    id 17
    label "Sanet PoP 17"
    Latitude 39.66442
    Longitude -2.0148
  ]
  node [
    id 18
    label "Sanet PoP 18"
    Latitude 45.47336
    Longitude 18.36088
  ]
  node [
    id 19
    label "Sanet PoP 19"
    Latitude 49.60514
    Longitude 15.76
  ]
  node [
    id 20
    label "Sanet PoP 20"
    Latitude 59.67233
    Longitude -2.717
  ]
  node [
    id 21
    label "Sanet PoP 21"
    Latitude 56.82095
    Longitude 9.82533
  ]
  node [
    id 22
    label "Sanet PoP 22"
    Latitude 59.11536
    Longitude -6.09889
  ]
  node [
    id 23
    label "Sanet PoP 23"
    Latitude 57.77726
    Longitude 5.90912
  ]
  node [
    id 24
    label "Sanet PoP 24"
    Latitude 40.60054
    Longitude -3.0234
  ]
  node [
    id 25
    label "Sanet PoP 25"
    Latitude 57.02731
    Longitude -8.07664
  ]
  node [
    id 26
    label "Sanet PoP 26"
    Latitude 57.4415
    Longitude 21.87555
  ]
  node [
    id 27
    label "Sanet PoP 27"
    Latitude 55.09759
    Longitude 20.54404
  ]
  edge [
    source 0
    target 1
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 2
  ]
  edge [
    source 0
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 2
    target 9
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 8
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 15
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 20
  ]
  edge [
    source 10
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 27
  ]
  edge [
    source 11
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 23
  ]
  edge [
    source 13
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 23
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 15
    target 16
  ]
  edge [
    source 15
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 21
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 23
  ]
  edge [
    source 22
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 22
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 24
    target 26
  ]
  edge [
    source 25
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 26
    target 27
  ]
]

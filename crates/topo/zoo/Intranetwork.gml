Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Intranetwork"
  directed 0
  node [
    id 0
    label "Intranetwork PoP 0"
    Latitude 41.27706
    Longitude -82.91527
  ]
  node [
    id 1
    label "Intranetwork PoP 1"
    Latitude 32.4421
    Longitude -118.93575
  ]
  node [
    id 2
    label "Intranetwork PoP 2"
    Latitude 40.98599
    Longitude -105.13912
  ]
  node [
    id 3
    label "Intranetwork PoP 3"
    Latitude 42.87147
    Longitude -74.7381
  ]
  node [
    id 4
    label "Intranetwork PoP 4"
    Latitude 46.60744
    Longitude -106.97002
  ]
  node [
    id 5
    label "Intranetwork PoP 5"
    Latitude 38.33621
    Longitude -99.60978
  ]
  node [
    id 6
    label "Intranetwork PoP 6"
    Latitude 38.25749
    Longitude -78.76732
  ]
  node [
    id 7
    label "Intranetwork PoP 7"
    Latitude 43.05148
    Longitude -101.08739
  ]
  node [
    id 8
    label "Intranetwork PoP 8"
    Latitude 40.56089
    Longitude -83.11839
  ]
  node [
    id 9
    label "Intranetwork PoP 9"
    Latitude 39.71206
    Longitude -116.13429
  ]
  node [
    id 10
    label "Intranetwork PoP 10"
    Latitude 45.72342
    Longitude -79.44579
  ]
  node [
    id 11
    label "Intranetwork PoP 11"
    Latitude 34.84532
    Longitude -93.12696
  ]
  node [
    id 12
    label "Intranetwork PoP 12"
    Latitude 43.73901
    Longitude -93.27731
  ]
  node [
    id 13
    label "Intranetwork PoP 13"
    Latitude 37.27456
    Longitude -120.30097
  ]
  node [
    id 14
    label "Intranetwork PoP 14"
    Latitude 33.29684
    Longitude -77.41096
  ]
  node [
    id 15
    label "Intranetwork PoP 15"
    Latitude 30.14435
    Longitude -83.91322
  ]
  node [
    id 16
    label "Intranetwork PoP 16"
    Latitude 44.78018
    Longitude -100.7384
  ]
  node [
    id 17
    label "Intranetwork PoP 17"
    Latitude 44.69373
    Longitude -120.74371
  ]
  node [
    id 18
    label "Intranetwork PoP 18"
    Latitude 35.89994
    Longitude -108.58749
  ]
  node [
    id 19
    label "Intranetwork PoP 19"
    Latitude 39.9657
    Longitude -116.67785
  ]
  node [
    id 20
    label "Intranetwork PoP 20"
    Latitude 46.98331
    Longitude -79.73634
  ]
  node [
    id 21
    label "Intranetwork PoP 21"
    Latitude 33.61941
    Longitude -85.71043
  ]
  node [
    id 22
    label "Intranetwork PoP 22"
    Latitude 38.63263
    Longitude -83.80209
  ]
  node [
    id 23
    label "Intranetwork PoP 23"
    Latitude 30.32175
    Longitude -90.31813
  ]
  node [
    id 24
    label "Intranetwork PoP 24"
    Latitude 37.75452
    Longitude -113.09755
  ]
  node [
    id 25
    label "Intranetwork PoP 25"
    Latitude 42.29327
    Longitude -115.0743
  ]
  node [
    id 26
    label "Intranetwork PoP 26"
    Latitude 37.2777
    Longitude -111.52548
  ]
  node [
    id 27
    label "Intranetwork PoP 27"
    Latitude 34.60076
    Longitude -108.62107
  ]
  edge [
    source 0
    target 1
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 3
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 1
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 6
  ]
  edge [
    source 3
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 26
  ]
  edge [
    source 4
    target 5
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 7
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 12
  ]
  edge [
    source 9
    target 17
  ]
  edge [
    source 10
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 15
  ]
  edge [
    source 12
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 13
    target 15
  ]
  edge [
    source 14
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 14
    target 22
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 26
  ]
  edge [
    source 19
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 23
    target 24
  ]
  edge [
    source 24
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Surfnet"
  directed 0
  node [
    id 0
    label "Surfnet PoP 0"
    Latitude 46.08785
    Longitude -7.15933
  ]
  node [
    id 1
    label "Surfnet PoP 1"
    Latitude 43.90939
    Longitude 5.46813
  ]
  node [
    id 2
    label "Surfnet PoP 2"
    Latitude 52.45512
    Longitude 23.4326
  ]
  node [
    id 3
    label "Surfnet PoP 3"
    Latitude 57.87044
    Longitude -5.94993
  ]
  node [
    id 4
    label "Surfnet PoP 4"
    Latitude 49.05359
    Longitude -5.09551
  ]
  node [
    id 5
    label "Surfnet PoP 5"
    Latitude 55.04255
    Longitude 14.44768
  ]
  node [
    id 6
    label "Surfnet PoP 6"
    Latitude 48.06476
    Longitude -5.75314
  ]
  node [
    id 7
    label "Surfnet PoP 7"
    Latitude 48.12712
    Longitude -5.94576
  ]
  node [
    id 8
    label "Surfnet PoP 8"
    Latitude 41.38981
    Longitude 20.4987
  ]
  node [
    id 9
    label "Surfnet PoP 9"
    Latitude 56.34588
    Longitude 16.36411
  ]
  node [
    id 10
    label "Surfnet PoP 10"
    Latitude 38.32087
    Longitude -1.48134
  ]
  node [
    id 11
    label "Surfnet PoP 11"
    Latitude 50.07846
    Longitude -8.58591
  ]
  node [
    id 12
    label "Surfnet PoP 12"
    Latitude 42.54414
    Longitude -8.29244
  ]
  node [
    id 13
    label "Surfnet PoP 13"
    Latitude 56.8631
    Longitude 21.08138
  ]
  node [
    id 14
    label "Surfnet PoP 14"
    Latitude 41.56108
    Longitude -1.49541
  ]
  node [
    id 15
    label "Surfnet PoP 15"
    Latitude 41.01869
    Longitude -2.63434
  ]
  node [
    id 16
    label "Surfnet PoP 16"
    Latitude 40.49761
    Longitude -4.50015
  ]
  node [
    id 17
    label "Surfnet PoP 17"
    Latitude 39.73013
    Longitude 18.09766
  ]
  node [
    id 18
    label "Surfnet PoP 18"
    Latitude 47.71429
    Longitude 10.05563
  ]
  node [
    id 19
    label "Surfnet PoP 19"
    Latitude 55.64115
    Longitude 1.27112
  ]
  node [
    id 20
    label "Surfnet PoP 20"
    Latitude 55.92651
    Longitude 14.48631
  ]
  node [
    id 21
    label "Surfnet PoP 21"
    Latitude 59.45048
    Longitude 20.17605
  ]
  node [
    id 22
    label "Surfnet PoP 22"
    Latitude 58.55343
    Longitude -6.21885
  ]
  node [
    id 23
    label "Surfnet PoP 23"
    Latitude 59.27764
    Longitude -7.27022
  ]
  node [
    id 24
    label "Surfnet PoP 24"
    Latitude 56.84873
    Longitude 9.61837
  ]
  node [
    id 25
    label "Surfnet PoP 25"
    Latitude 51.20442
    Longitude 16.71572
  ]
  node [
    id 26
    label "Surfnet PoP 26"
    Latitude 52.90546
    Longitude 19.44636
  ]
  node [
    id 27
    label "Surfnet PoP 27"
    Latitude 42.30438
    Longitude 23.05591
  ]
  edge [
    source 0
    target 1
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 8
  ]
  edge [
    source 3
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 14
  ]
  edge [
    source 7
    target 8
  ]
  edge [
    source 7
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 11
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 13
    target 26
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 14
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 23
  ]
  edge [
    source 18
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 23
    target 24
  ]
  edge [
    source 24
    target 25
  ]
  edge [
    source 24
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Geant2001"
  directed 0
  node [
    id 0
    label "Geant2001 PoP 0"
    Latitude 45.89235
    Longitude 19.26505
  ]
  node [
    id 1
    label "Geant2001 PoP 1"
    Latitude 50.17049
    Longitude -1.27242
  ]
  node [
    id 2
    label "Geant2001 PoP 2"
    Latitude 56.68935
    Longitude 18.87464
  ]
  node [
    id 3
    label "Geant2001 PoP 3"
    Latitude 38.50582
    Longitude -6.38127
  ]
  node [
    id 4
    label "Geant2001 PoP 4"
    Latitude 40.77377
    Longitude -4.97685
  ]
  node [
    id 5
    label "Geant2001 PoP 5"
    Latitude 46.54639
    Longitude 12.11545
  ]
  node [
    id 6
    label "Geant2001 PoP 6"
    Latitude 45.26855
    Longitude 8.4597
  ]
  node [
    id 7
    label "Geant2001 PoP 7"
    Latitude 47.63588
    Longitude -3.15436
  ]
  node [
    id 8
    label "Geant2001 PoP 8"
    Latitude 56.08902
    Longitude -7.1716
  ]
  node [
    id 9
    label "Geant2001 PoP 9"
    Latitude 45.83629
    Longitude 1.13291
  ]
  node [
    id 10
    label "Geant2001 PoP 10"
    Latitude 55.12811
    Longitude -6.90182
  ]
  node [
    id 11
    label "Geant2001 PoP 11"
    Latitude 57.30462
    Longitude -1.43414
  ]
  node [
    id 12
    label "Geant2001 PoP 12"
    Latitude 39.89418
    Longitude 24.08738
  ]
  node [
    id 13
    label "Geant2001 PoP 13"
    Latitude 54.82291
    Longitude 15.32693
  ]
  node [
    id 14
    label "Geant2001 PoP 14"
    Latitude 38.58699
    Longitude -0.27424
  ]
  node [
    id 15
    label "Geant2001 PoP 15"
    Latitude 57.3001
    Longitude 22.49485
  ]
  node [
    id 16
    label "Geant2001 PoP 16"
    Latitude 44.56965
    Longitude 8.9334
  ]
  node [
    id 17
    label "Geant2001 PoP 17"
    Latitude 39.65077
    Longitude 18.11607
  ]
  node [
    id 18
    label "Geant2001 PoP 18"
    Latitude 52.85309
    Longitude 24.42959
  ]
  node [
    id 19
    label "Geant2001 PoP 19"
    Latitude 52.93346
    Longitude 13.90962
  ]
  node [
    id 20
    label "Geant2001 PoP 20"
    Latitude 44.91193
    Longitude 22.84059
  ]
  node [
    id 21
    label "Geant2001 PoP 21"
    Latitude 40.3707
    Longitude 20.94603
  ]
  node [
    id 22
    label "Geant2001 PoP 22"
    Latitude 50.23198
    Longitude -2.90308
  ]
  node [
    id 23
    label "Geant2001 PoP 23"
    Latitude 39.35836
    Longitude 10.13953
  ]
  node [
    id 24
    label "Geant2001 PoP 24"
    Latitude 56.97748
    Longitude 10.63644
  ]
  node [
    id 25
    label "Geant2001 PoP 25"
    Latitude 55.64067
    Longitude 23.44492
  ]
  node [
    id 26
    label "Geant2001 PoP 26"
    Latitude 59.95065
    Longitude 9.88488
  ]
  edge [
    source 0
    target 1
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 2
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 6
  ]
  edge [
    source 0
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 20
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 3
    target 4
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 5
    target 8
  ]
  edge [
    source 5
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 11
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 22
  ]
  edge [
    source 12
    target 13
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 14
  ]
  edge [
    source 12
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 16
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 20
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 23
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 24
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 25
    target 26
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Litnet"
  directed 0
  node [
    id 0
    label "Litnet PoP 0"
    Latitude 58.93704
    Longitude 24.00668
  ]
  node [
    id 1
    label "Litnet PoP 1"
    Latitude 54.97042
    Longitude -5.38674
  ]
  node [
    id 2
    label "Litnet PoP 2"
    Latitude 54.68844
    Longitude -3.80066
  ]
  node [
    id 3
    label "Litnet PoP 3"
    Latitude 47.41847
    Longitude 18.59947
  ]
  node [
    id 4
    label "Litnet PoP 4"
    Latitude 49.52238
    Longitude 9.01372
  ]
  node [
    id 5
    label "Litnet PoP 5"
    Latitude 44.99054
    Longitude 12.62741
  ]
  node [
    id 6
    label "Litnet PoP 6"
    Latitude 52.76637
    Longitude 13.47433
  ]
  node [
    id 7
    label "Litnet PoP 7"
    Latitude 47.62252
    Longitude -5.8038
  ]
  node [
    id 8
    label "Litnet PoP 8"
    Latitude 49.93266
    Longitude -3.59297
  ]
  node [
    id 9
    label "Litnet PoP 9"
    Latitude 38.86204
    Longitude -6.72691
  ]
  node [
    id 10
    label "Litnet PoP 10"
    Latitude 53.60212
    Longitude 11.37227
  ]
  node [
    id 11
    label "Litnet PoP 11"
    Latitude 52.46771
    Longitude -5.6555
  ]
  node [
    id 12
    label "Litnet PoP 12"
    Latitude 49.97671
    Longitude -1.08103
  ]
  node [
    id 13
    label "Litnet PoP 13"
    Latitude 54.44974
    Longitude 24.39934
  ]
  node [
    id 14
    label "Litnet PoP 14"
    Latitude 51.71319
    Longitude -8.64427
  ]
  node [
    id 15
    label "Litnet PoP 15"
    Latitude 41.185
    Longitude 2.70827
  ]
  node [
    id 16
    label "Litnet PoP 16"
    Latitude 51.81507
    Longitude 0.68407
  ]
  node [
    id 17
    label "Litnet PoP 17"
    Latitude 58.05454
    Longitude 18.24274
  ]
  node [
    id 18
    label "Litnet PoP 18"
    Latitude 44.02122
    Longitude -1.54115
  ]
  node [
    id 19
    label "Litnet PoP 19"
    Latitude 38.40002
    Longitude -1.00089
  ]
  node [
    id 20
    label "Litnet PoP 20"
    Latitude 48.27222
    Longitude -5.10488
  ]
  node [
    id 21
    label "Litnet PoP 21"
    Latitude 48.46556
    Longitude 0.4539
  ]
  node [
    id 22
    label "Litnet PoP 22"
    Latitude 57.35889
    Longitude 13.09868
  ]
  node [
    id 23
    label "Litnet PoP 23"
    Latitude 49.15874
    Longitude 22.22165
  ]
  node [
    id 24
    label "Litnet PoP 24"
    Latitude 42.35835
    Longitude 15.05581
  ]
  node [
    id 25
    label "Litnet PoP 25"
    Latitude 59.96103
    Longitude 12.37591
  ]
  node [
    id 26
    label "Litnet PoP 26"
    Latitude 45.89299
    Longitude 7.19746
  ]
  node [
    id 27
    label "Litnet PoP 27"
    Latitude 40.41311
    Longitude 23.15474
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 12
  ]
  edge [
    source 0
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 21
  ]
  edge [
    source 3
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 12
  ]
  edge [
    source 3
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 24
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 5
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 24
  ]
  edge [
    source 6
    target 7
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 15
  ]
  edge [
    source 6
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 7
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 27
  ]
  edge [
    source 12
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 14
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 14
    target 20
  ]
  edge [
    source 15
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 27
  ]
  edge [
    source 16
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 27
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 20
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 22
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 23
    target 24
  ]
  edge [
    source 24
    target 25
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Cogentco"
  directed 0
  node [
    id 0
    label "Cogentco PoP 0"
    Latitude 8.00552
    Longitude -108.08351
  ]
  node [
    id 1
    label "Cogentco PoP 1"
    Latitude 36.91809
    Longitude -81.36788
  ]
  node [
    id 2
    label "Cogentco PoP 2"
    Latitude -7.9943
    Longitude -100.5886
  ]
  node [
    id 3
    label "Cogentco PoP 3"
    Latitude 1.86597
    Longitude 112.78019
  ]
  node [
    id 4
    label "Cogentco PoP 4"
    Latitude 4.30045
    Longitude 113.93517
  ]
  node [
    id 5
    label "Cogentco PoP 5"
    Latitude 25.25873
    Longitude 111.16422
  ]
  node [
    id 6
    label "Cogentco PoP 6"
    Latitude -11.16125
    Longitude -83.00657
  ]
  node [
    id 7
    label "Cogentco PoP 7"
    Latitude -16.86987
    Longitude -74.03086
  ]
  node [
    id 8
    label "Cogentco PoP 8"
    Latitude 0.55382
    Longitude 120.4592
  ]
  node [
    id 9
    label "Cogentco PoP 9"
    Latitude 53.35694
    Longitude -113.28654
  ]
  node [
    id 10
    label "Cogentco PoP 10"
    Latitude 30.88897
    Longitude 110.7467
  ]
  node [
    id 11
    label "Cogentco PoP 11"
    Latitude 18.19008
    Longitude 94.22628
  ]
  node [
    id 12
    label "Cogentco PoP 12"
    Latitude -26.41873
    Longitude 19.30982
  ]
  node [
    id 13
    label "Cogentco PoP 13"
    Latitude 18.79997
    Longitude 120.02944
  ]
  node [
    id 14
    label "Cogentco PoP 14"
    Latitude -28.012
    Longitude -19.87211
  ]
  node [
    id 15
    label "Cogentco PoP 15"
    Latitude 40.88239
    Longitude -50.61803
  ]
  node [
    id 16
    label "Cogentco PoP 16"
    Latitude 35.73923
    Longitude -99.13766
  ]
  node [
    id 17
    label "Cogentco PoP 17"
    Latitude 54.03973
    Longitude -98.49775
  ]
  node [
    id 18
    label "Cogentco PoP 18"
    Latitude -24.55875
    Longitude -117.0016
  ]
  node [
    id 19
    label "Cogentco PoP 19"
    Latitude -21.63426
    Longitude -26.01173
  ]
  node [
    id 20
    label "Cogentco PoP 20"
    Latitude 14.74293
    Longitude 88.75691
  ]
  node [
    id 21
    label "Cogentco PoP 21"
    Latitude -12.51301
    Longitude 91.97524
  ]
  node [
    id 22
    label "Cogentco PoP 22"
    Latitude -12.3373
    Longitude 5.42479
  ]
  node [
    id 23
    label "Cogentco PoP 23"
    Latitude -5.38827
    Longitude 15.16828
  ]
  node [
    id 24
    label "Cogentco PoP 24"
    Latitude 5.01788
    Longitude 66.95171
  ]
  node [
    id 25
    label "Cogentco PoP 25"
    Latitude 42.07207
    Longitude -100.66949
  ]
  node [
    id 26
    label "Cogentco PoP 26"
    Latitude -9.81663
    Longitude 69.41087
  ]
  node [
    id 27
    label "Cogentco PoP 27"
    Latitude 10.68608
    Longitude 63.76607
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 2
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 24
  ]
  edge [
    source 1
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 9
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 27
  ]
  edge [
    source 5
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 9
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 11
  ]
  edge [
    source 9
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 10
    target 26
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 14
  ]
  edge [
    source 12
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 17
  ]
  edge [
    source 15
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 23
  ]
  edge [
    source 18
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 20
    target 21
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 24
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
]

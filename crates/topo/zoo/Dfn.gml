Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Dfn"
  directed 0
  node [
    id 0
    label "Dfn PoP 0"
    Latitude 48.89726
    Longitude 10.88168
  ]
  node [
    id 1
    label "Dfn PoP 1"
    Latitude 52.19224
    Longitude 9.37189
  ]
  node [
    id 2
    label "Dfn PoP 2"
    Latitude 55.58688
    Longitude -0.20455
  ]
  node [
    id 3
    label "Dfn PoP 3"
    Latitude 43.89185
    Longitude -6.67096
  ]
  node [
    id 4
    label "Dfn PoP 4"
    Latitude 46.14437
    Longitude 8.51214
  ]
  node [
    id 5
    label "Dfn PoP 5"
    Latitude 39.93688
    Longitude 22.63102
  ]
  node [
    id 6
    label "Dfn PoP 6"
    Latitude 42.52488
    Longitude 8.80616
  ]
  node [
    id 7
    label "Dfn PoP 7"
    Latitude 49.07125
    Longitude 8.00085
  ]
  node [
    id 8
    label "Dfn PoP 8"
    Latitude 53.90631
    Longitude 3.1299
  ]
  node [
    id 9
    label "Dfn PoP 9"
    Latitude 40.9681
    Longitude 24.63203
  ]
  node [
    id 10
    label "Dfn PoP 10"
    Latitude 57.13125
    Longitude 7.55244
  ]
  node [
    id 11
    label "Dfn PoP 11"
    Latitude 54.01025
    Longitude 8.26945
  ]
  node [
    id 12
    label "Dfn PoP 12"
    Latitude 45.10197
    Longitude 14.8214
  ]
  node [
    id 13
    label "Dfn PoP 13"
    Latitude 46.28836
    Longitude -3.95603
  ]
  node [
    id 14
    label "Dfn PoP 14"
    Latitude 40.1837
    Longitude 3.57272
  ]
  node [
    id 15
    label "Dfn PoP 15"
    Latitude 40.69032
    Longitude 6.11283
  ]
  node [
    id 16
    label "Dfn PoP 16"
    Latitude 38.83415
    Longitude 12.08676
  ]
  node [
    id 17
    label "Dfn PoP 17"
    Latitude 47.64466
    Longitude -8.50361
  ]
  node [
    id 18
    label "Dfn PoP 18"
    Latitude 59.00898
    Longitude 2.8391
  ]
  node [
    id 19
    label "Dfn PoP 19"
    Latitude 45.48633
    Longitude 8.40592
  ]
  node [
    id 20
    label "Dfn PoP 20"
    Latitude 47.13055
    Longitude -0.49832
  ]
  node [
    id 21
    label "Dfn PoP 21"
    Latitude 42.7697
    Longitude 10.37867
  ]
  node [
    id 22
    label "Dfn PoP 22"
    Latitude 52.99121
    Longitude 5.71648
  ]
  node [
    id 23
    label "Dfn PoP 23"
    Latitude 51.57447
    Longitude -5.80069
  ]
  node [
    id 24
    label "Dfn PoP 24"
    Latitude 45.84515
    Longitude -6.08953
  ]
  node [
    id 25
    label "Dfn PoP 25"
    Latitude 40.45716
    Longitude -2.01759
  ]
  node [
    id 26
    label "Dfn PoP 26"
    Latitude 51.77783
    Longitude 8.69184
  ]
  node [
    id 27
    label "Dfn PoP 27"
    Latitude 40.44129
    Longitude 22.56487
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 2
  ]
  edge [
    source 0
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 11
  ]
  edge [
    source 2
    target 15
  ]
  edge [
    source 3
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 7
  ]
  edge [
    source 3
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 18
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 13
  ]
  edge [
    source 6
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 14
    target 20
  ]
  edge [
    source 15
    target 16
  ]
  edge [
    source 15
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 20
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 24
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
]

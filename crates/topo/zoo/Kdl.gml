Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Kdl"
  directed 0
  node [
    id 0
    label "Kdl PoP 0"
    Latitude 42.63564
    Longitude -75.97874
  ]
  node [
    id 1
    label "Kdl PoP 1"
    Latitude 46.91886
    Longitude -119.42495
  ]
  node [
    id 2
    label "Kdl PoP 2"
    Latitude 33.59624
    Longitude -80.11974
  ]
  node [
    id 3
    label "Kdl PoP 3"
    Latitude 38.96372
    Longitude -103.29845
  ]
  node [
    id 4
    label "Kdl PoP 4"
    Latitude 31.66024
    Longitude -110.79003
  ]
  node [
    id 5
    label "Kdl PoP 5"
    Latitude 41.47411
    Longitude -91.48432
  ]
  node [
    id 6
    label "Kdl PoP 6"
    Latitude 36.87307
    Longitude -89.51469
  ]
  node [
    id 7
    label "Kdl PoP 7"
    Latitude 43.24746
    Longitude -110.38125
  ]
  node [
    id 8
    label "Kdl PoP 8"
    Latitude 40.69187
    Longitude -116.47843
  ]
  node [
    id 9
    label "Kdl PoP 9"
    Latitude 30.75361
    Longitude -104.21308
  ]
  node [
    id 10
    label "Kdl PoP 10"
    Latitude 30.8241
    Longitude -117.64179
  ]
  node [
    id 11
    label "Kdl PoP 11"
    Latitude 37.78601
    Longitude -96.92445
  ]
  node [
    id 12
    label "Kdl PoP 12"
    Latitude 38.60694
    Longitude -83.25663
  ]
  node [
    id 13
    label "Kdl PoP 13"
    Latitude 38.69671
    Longitude -100.0155
  ]
  node [
    id 14
    label "Kdl PoP 14"
    Latitude 41.32003
    Longitude -102.27812
  ]
  node [
    id 15
    label "Kdl PoP 15"
    Latitude 31.81121
    Longitude -95.3772
  ]
  node [
    id 16
    label "Kdl PoP 16"
    Latitude 42.69242
    Longitude -83.51822
  ]
  node [
    id 17
    label "Kdl PoP 17"
    Latitude 42.55934
    Longitude -89.67645
  ]
  node [
    id 18
    label "Kdl PoP 18"
    Latitude 30.34335
    Longitude -116.0544
  ]
  node [
    id 19
    label "Kdl PoP 19"
    Latitude 30.92936
    Longitude -104.70114
  ]
  node [
    id 20
    label "Kdl PoP 20"
    Latitude 35.61843
    Longitude -85.0125
  ]
  node [
    id 21
    label "Kdl PoP 21"
    Latitude 40.28974
    Longitude -81.51095
  ]
  node [
    id 22
    label "Kdl PoP 22"
    Latitude 46.30828
    Longitude -105.46489
  ]
  node [
    id 23
    label "Kdl PoP 23"
    Latitude 38.76601
    Longitude -96.66078
  ]
  node [
    id 24
    label "Kdl PoP 24"
    Latitude 42.06768
    Longitude -79.04589
  ]
  node [
    id 25
    label "Kdl PoP 25"
    Latitude 46.40292
    Longitude -108.13363
  ]
  node [
    id 26
    label "Kdl PoP 26"
    Latitude 42.42643
    Longitude -99.80569
  ]
  node [
    id 27
    label "Kdl PoP 27"
    Latitude 45.65134
    Longitude -74.96924
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 17
  ]
  edge [
    source 7
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 7
    target 24
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 16
  ]
  edge [
    source 9
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 10
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 14
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 14
    target 19
  ]
  edge [
    source 15
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 21
  ]
  edge [
    source 15
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 19
  ]
  edge [
    source 18
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
]

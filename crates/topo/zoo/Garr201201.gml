Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Garr201201"
  directed 0
  node [
    id 0
    label "Garr201201 PoP 0"
    Latitude 39.72216
    Longitude 2.70859
  ]
  node [
    id 1
    label "Garr201201 PoP 1"
    Latitude 40.80756
    Longitude 14.67519
  ]
  node [
    id 2
    label "Garr201201 PoP 2"
    Latitude 46.49782
    Longitude -6.24682
  ]
  node [
    id 3
    label "Garr201201 PoP 3"
    Latitude 45.92745
    Longitude 23.81731
  ]
  node [
    id 4
    label "Garr201201 PoP 4"
    Latitude 38.71534
    Longitude -3.08839
  ]
  node [
    id 5
    label "Garr201201 PoP 5"
    Latitude 51.75295
    Longitude -5.55056
  ]
  node [
    id 6
    label "Garr201201 PoP 6"
    Latitude 54.70637
    Longitude 7.44927
  ]
  node [
    id 7
    label "Garr201201 PoP 7"
    Latitude 57.76854
    Longitude 16.83939
  ]
  node [
    id 8
    label "Garr201201 PoP 8"
    Latitude 57.65622
    Longitude 15.86762
  ]
  node [
    id 9
    label "Garr201201 PoP 9"
    Latitude 40.22957
    Longitude 20.06217
  ]
  node [
    id 10
    label "Garr201201 PoP 10"
    Latitude 55.30586
    Longitude 14.93545
  ]
  node [
    id 11
    label "Garr201201 PoP 11"
    Latitude 43.26071
    Longitude 0.47038
  ]
  node [
    id 12
    label "Garr201201 PoP 12"
    Latitude 58.20459
    Longitude -6.23601
  ]
  node [
    id 13
    label "Garr201201 PoP 13"
    Latitude 53.80701
    Longitude 23.2702
  ]
  node [
    id 14
    label "Garr201201 PoP 14"
    Latitude 47.17003
    Longitude -4.34384
  ]
  node [
    id 15
    label "Garr201201 PoP 15"
    Latitude 57.16981
    Longitude 10.50485
  ]
  node [
    id 16
    label "Garr201201 PoP 16"
    Latitude 38.73404
    Longitude 8.78077
  ]
  node [
    id 17
    label "Garr201201 PoP 17"
    Latitude 38.27747
    Longitude -7.18961
  ]
  node [
    id 18
    label "Garr201201 PoP 18"
    Latitude 48.98604
    Longitude 15.81791
  ]
  node [
    id 19
    label "Garr201201 PoP 19"
    Latitude 50.25816
    Longitude 2.22709
  ]
  node [
    id 20
    label "Garr201201 PoP 20"
    Latitude 42.973
    Longitude -0.62217
  ]
  node [
    id 21
    label "Garr201201 PoP 21"
    Latitude 40.19791
    Longitude 14.36129
  ]
  node [
    id 22
    label "Garr201201 PoP 22"
    Latitude 53.68512
    Longitude -8.96213
  ]
  node [
    id 23
    label "Garr201201 PoP 23"
    Latitude 44.32136
    Longitude -3.43297
  ]
  node [
    id 24
    label "Garr201201 PoP 24"
    Latitude 46.41398
    Longitude 5.15296
  ]
  node [
    id 25
    label "Garr201201 PoP 25"
    Latitude 47.97867
    Longitude 3.94351
  ]
  node [
    id 26
    label "Garr201201 PoP 26"
    Latitude 48.33787
    Longitude -2.24221
  ]
  node [
    id 27
    label "Garr201201 PoP 27"
    Latitude 38.77823
    Longitude -5.15465
  ]
  edge [
    source 0
    target 1
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 5
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 13
  ]
  edge [
    source 0
    target 15
  ]
  edge [
    source 0
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 24
  ]
  edge [
    source 2
    target 3
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 8
  ]
  edge [
    source 3
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 18
  ]
  edge [
    source 4
    target 5
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 20
  ]
  edge [
    source 4
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 11
  ]
  edge [
    source 6
    target 19
  ]
  edge [
    source 6
    target 21
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 19
  ]
  edge [
    source 18
    target 23
  ]
  edge [
    source 19
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 21
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 23
    target 24
  ]
  edge [
    source 24
    target 25
  ]
  edge [
    source 24
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

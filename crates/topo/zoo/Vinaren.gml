Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Vinaren"
  directed 0
  node [
    id 0
    label "Vinaren PoP 0"
    Latitude 11.85148
    Longitude 103.22214
  ]
  node [
    id 1
    label "Vinaren PoP 1"
    Latitude 12.53199
    Longitude 108.10309
  ]
  node [
    id 2
    label "Vinaren PoP 2"
    Latitude 20.04354
    Longitude 103.16708
  ]
  node [
    id 3
    label "Vinaren PoP 3"
    Latitude 12.3847
    Longitude 107.06283
  ]
  node [
    id 4
    label "Vinaren PoP 4"
    Latitude 16.14745
    Longitude 106.63737
  ]
  node [
    id 5
    label "Vinaren PoP 5"
    Latitude 9.47312
    Longitude 106.92873
  ]
  node [
    id 6
    label "Vinaren PoP 6"
    Latitude 14.80156
    Longitude 108.48895
  ]
  node [
    id 7
    label "Vinaren PoP 7"
    Latitude 18.17888
    Longitude 104.0978
  ]
  node [
    id 8
    label "Vinaren PoP 8"
    Latitude 21.77722
    Longitude 108.52747
  ]
  node [
    id 9
    label "Vinaren PoP 9"
    Latitude 18.25275
    Longitude 107.02669
  ]
  node [
    id 10
    label "Vinaren PoP 10"
    Latitude 13.22115
    Longitude 105.27731
  ]
  node [
    id 11
    label "Vinaren PoP 11"
    Latitude 10.4578
    Longitude 108.12397
  ]
  node [
    id 12
    label "Vinaren PoP 12"
    Latitude 19.65722
    Longitude 107.84506
  ]
  node [
    id 13
    label "Vinaren PoP 13"
    Latitude 13.6738
    Longitude 103.05105
  ]
  node [
    id 14
    label "Vinaren PoP 14"
    Latitude 17.59364
    Longitude 103.79267
  ]
  node [
    id 15
    label "Vinaren PoP 15"
    Latitude 14.39247
    Longitude 104.80528
  ]
  node [
    id 16
    label "Vinaren PoP 16"
    Latitude 21.88022
    Longitude 106.63372
  ]
  node [
    id 17
    label "Vinaren PoP 17"
    Latitude 20.80743
    Longitude 106.90479
  ]
  node [
    id 18
    label "Vinaren PoP 18"
    Latitude 11.07451
    Longitude 105.2647
  ]
  node [
    id 19
    label "Vinaren PoP 19"
    Latitude 9.77132
    Longitude 107.48161
  ]
  node [
    id 20
    label "Vinaren PoP 20"
    Latitude 13.9533
    Longitude 104.98583
  ]
  node [
    id 21
    label "Vinaren PoP 21"
    Latitude 16.85687
    Longitude 104.78839
  ]
  node [
    id 22
    label "Vinaren PoP 22"
    Latitude 14.0302
    Longitude 105.23674
  ]
  node [
    id 23
    label "Vinaren PoP 23"
    Latitude 20.32919
    Longitude 105.19021
  ]
  node [
    id 24
    label "Vinaren PoP 24"
    Latitude 19.16261
    Longitude 108.06643
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 2
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 4
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 21
  ]
  edge [
    source 0
    target 24
  ]
  edge [
    source 1
    target 2
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 5
  ]
  edge [
    source 3
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 12
  ]
  edge [
    source 3
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 4
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 10
  ]
  edge [
    source 6
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 12
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 14
  ]
  edge [
    source 12
    target 16
  ]
  edge [
    source 13
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 13
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 17
  ]
  edge [
    source 15
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 23
    target 24
  ]
]

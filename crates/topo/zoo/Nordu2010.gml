Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Nordu2010"
  directed 0
  node [
    id 0
    label "Nordu2010 PoP 0"
    Latitude 55.09207
    Longitude 6.4128
  ]
  node [
    id 1
    label "Nordu2010 PoP 1"
    Latitude 55.02986
    Longitude 6.8059
  ]
  node [
    id 2
    label "Nordu2010 PoP 2"
    Latitude 54.83031
    Longitude 11.10952
  ]
  node [
    id 3
    label "Nordu2010 PoP 3"
    Latitude 50.17775
    Longitude 16.08238
  ]
  node [
    id 4
    label "Nordu2010 PoP 4"
    Latitude 51.39872
    Longitude -6.54163
  ]
  node [
    id 5
    label "Nordu2010 PoP 5"
    Latitude 57.59364
    Longitude -2.95946
  ]
  node [
    id 6
    label "Nordu2010 PoP 6"
    Latitude 42.0726
    Longitude 14.26664
  ]
  node [
    id 7
    label "Nordu2010 PoP 7"
    Latitude 43.44384
    Longitude -6.22398
  ]
  node [
    id 8
    label "Nordu2010 PoP 8"
    Latitude 40.54417
    Longitude 24.26993
  ]
  node [
    id 9
    label "Nordu2010 PoP 9"
    Latitude 58.36248
    Longitude -4.46155
  ]
  node [
    id 10
    label "Nordu2010 PoP 10"
    Latitude 44.36383
    Longitude -2.02724
  ]
  node [
    id 11
    label "Nordu2010 PoP 11"
    Latitude 54.55996
    Longitude -2.04598
  ]
  node [
    id 12
    label "Nordu2010 PoP 12"
    Latitude 59.70309
    Longitude 24.06684
  ]
  node [
    id 13
    label "Nordu2010 PoP 13"
    Latitude 39.36362
    Longitude -2.68685
  ]
  node [
    id 14
    label "Nordu2010 PoP 14"
    Latitude 43.48704
    Longitude 11.14019
  ]
  node [
    id 15
    label "Nordu2010 PoP 15"
    Latitude 54.52476
    Longitude 5.33965
  ]
  node [
    id 16
    label "Nordu2010 PoP 16"
    Latitude 53.45032
    Longitude 10.75104
  ]
  node [
    id 17
    label "Nordu2010 PoP 17"
    Latitude 41.83062
    Longitude 1.02732
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 3
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 10
  ]
  edge [
    source 0
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 6
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 8
  ]
  edge [
    source 6
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 12
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 15
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 14
  ]
  edge [
    source 13
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 16
  ]
  edge [
    source 15
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Chinanet"
  directed 0
  node [
    id 0
    label "Chinanet PoP 0"
    Latitude 39.97069
    Longitude 114.62506
  ]
  node [
    id 1
    label "Chinanet PoP 1"
    Latitude 40.14187
    Longitude 117.88071
  ]
  node [
    id 2
    label "Chinanet PoP 2"
    Latitude 38.47965
    Longitude 120.97112
  ]
  node [
    id 3
    label "Chinanet PoP 3"
    Latitude 32.83723
    Longitude 119.9055
  ]
  node [
    id 4
    label "Chinanet PoP 4"
    Latitude 44.82351
    Longitude 116.25783
  ]
  node [
    id 5
    label "Chinanet PoP 5"
    Latitude 23.12994
    Longitude 117.42914
  ]
  node [
    id 6
    label "Chinanet PoP 6"
    Latitude 28.24894
    Longitude 105.4439
  ]
  node [
    id 7
    label "Chinanet PoP 7"
    Latitude 34.80396
    Longitude 117.23591
  ]
  node [
    id 8
    label "Chinanet PoP 8"
    Latitude 39.54673
    Longitude 109.27313
  ]
  node [
    id 9
    label "Chinanet PoP 9"
    Latitude 30.34714
    Longitude 122.71521
  ]
  node [
    id 10
    label "Chinanet PoP 10"
    Latitude 24.65385
    Longitude 117.81392
  ]
  node [
    id 11
    label "Chinanet PoP 11"
    Latitude 23.85582
    Longitude 124.93258
  ]
  node [
    id 12
    label "Chinanet PoP 12"
    Latitude 32.77114
    Longitude 103.68904
  ]
  node [
    id 13
    label "Chinanet PoP 13"
    Latitude 39.07459
    Longitude 101.52309
  ]
  node [
    id 14
    label "Chinanet PoP 14"
    Latitude 38.46473
    Longitude 123.01292
  ]
  node [
    id 15
    label "Chinanet PoP 15"
    Latitude 44.42018
    Longitude 113.78482
  ]
  node [
    id 16
    label "Chinanet PoP 16"
    Latitude 35.29457
    Longitude 117.70079
  ]
  node [
    id 17
    label "Chinanet PoP 17"
    Latitude 26.76185
    Longitude 120.58092
  ]
  node [
    id 18
    label "Chinanet PoP 18"
    Latitude 31.34899
    Longitude 118.19127
  ]
  node [
    id 19
    label "Chinanet PoP 19"
    Latitude 26.19463
    Longitude 100.98158
  ]
  node [
    id 20
    label "Chinanet PoP 20"
    Latitude 34.91323
    Longitude 112.13857
  ]
  node [
    id 21
    label "Chinanet PoP 21"
    Latitude 39.96846
    Longitude 121.5818
  ]
  node [
    id 22
    label "Chinanet PoP 22"
    Latitude 37.96349
    Longitude 122.44773
  ]
  node [
    id 23
    label "Chinanet PoP 23"
    Latitude 29.78016
    Longitude 101.06086
  ]
  node [
    id 24
    label "Chinanet PoP 24"
    Latitude 39.29948
    Longitude 100.94107
  ]
  node [
    id 25
    label "Chinanet PoP 25"
    Latitude 41.69813
    Longitude 124.57079
  ]
  node [
    id 26
    label "Chinanet PoP 26"
    Latitude 40.67025
    Longitude 119.92396
  ]
  node [
    id 27
    label "Chinanet PoP 27"
    Latitude 33.63657
    Longitude 105.25679
  ]
  edge [
    source 0
    target 1
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 3
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 11
  ]
  edge [
    source 0
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 27
  ]
  edge [
    source 1
    target 2
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 7
  ]
  edge [
    source 1
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 26
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 6
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 8
  ]
  edge [
    source 7
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 7
    target 24
  ]
  edge [
    source 8
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 12
  ]
  edge [
    source 9
    target 20
  ]
  edge [
    source 10
    target 11
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 10
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 26
  ]
  edge [
    source 16
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 19
  ]
  edge [
    source 18
    target 21
  ]
  edge [
    source 19
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 20
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 24
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Darkstrand"
  directed 0
  node [
    id 0
    label "Darkstrand PoP 0"
    Latitude 40.20093
    Longitude -88.69117
  ]
  node [
    id 1
    label "Darkstrand PoP 1"
    Latitude 36.14665
    Longitude -77.34109
  ]
  node [
    id 2
    label "Darkstrand PoP 2"
    Latitude 39.70113
    Longitude -116.18
  ]
  node [
    id 3
    label "Darkstrand PoP 3"
    Latitude 46.3863
    Longitude -120.60099
  ]
  node [
    id 4
    label "Darkstrand PoP 4"
    Latitude 42.00894
    Longitude -117.90507
  ]
  node [
    id 5
    label "Darkstrand PoP 5"
    Latitude 31.3314
    Longitude -98.05466
  ]
  node [
    id 6
    label "Darkstrand PoP 6"
    Latitude 44.06771
    Longitude -84.35284
  ]
  node [
    id 7
    label "Darkstrand PoP 7"
    Latitude 35.70193
    Longitude -78.83267
  ]
  node [
    id 8
    label "Darkstrand PoP 8"
    Latitude 40.92827
    Longitude -84.63936
  ]
  node [
    id 9
    label "Darkstrand PoP 9"
    Latitude 32.11327
    Longitude -97.68504
  ]
  node [
    id 10
    label "Darkstrand PoP 10"
    Latitude 43.81438
    Longitude -79.41902
  ]
  node [
    id 11
    label "Darkstrand PoP 11"
    Latitude 33.47688
    Longitude -79.85495
  ]
  node [
    id 12
    label "Darkstrand PoP 12"
    Latitude 33.51259
    Longitude -92.67927
  ]
  node [
    id 13
    label "Darkstrand PoP 13"
    Latitude 40.1599
    Longitude -98.9934
  ]
  node [
    id 14
    label "Darkstrand PoP 14"
    Latitude 31.40527
    Longitude -79.14681
  ]
  node [
    id 15
    label "Darkstrand PoP 15"
    Latitude 39.19574
    Longitude -79.89286
  ]
  node [
    id 16
    label "Darkstrand PoP 16"
    Latitude 31.76446
    Longitude -82.77156
  ]
  node [
    id 17
    label "Darkstrand PoP 17"
    Latitude 46.35127
    Longitude -101.69952
  ]
  node [
    id 18
    label "Darkstrand PoP 18"
    Latitude 39.60165
    Longitude -104.96509
  ]
  node [
    id 19
    label "Darkstrand PoP 19"
    Latitude 32.57956
    Longitude -77.9164
  ]
  node [
    id 20
    label "Darkstrand PoP 20"
    Latitude 43.01859
    Longitude -102.74326
  ]
  node [
    id 21
    label "Darkstrand PoP 21"
    Latitude 44.24543
    Longitude -120.38378
  ]
  node [
    id 22
    label "Darkstrand PoP 22"
    Latitude 41.24552
    Longitude -105.06233
  ]
  node [
    id 23
    label "Darkstrand PoP 23"
    Latitude 34.72506
    Longitude -101.68821
  ]
  node [
    id 24
    label "Darkstrand PoP 24"
    Latitude 42.42566
    Longitude -84.75069
  ]
  node [
    id 25
    label "Darkstrand PoP 25"
    Latitude 33.99832
    Longitude -83.59952
  ]
  node [
    id 26
    label "Darkstrand PoP 26"
    Latitude 36.71464
    Longitude -108.24134
  ]
  node [
    id 27
    label "Darkstrand PoP 27"
    Latitude 36.60148
    Longitude -75.76937
  ]
  edge [
    source 0
    target 1
  ]
  edge [
    source 0
    target 6
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 27
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 17
  ]
  edge [
    source 1
    target 21
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 11
  ]
  edge [
    source 3
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 23
  ]
  edge [
    source 4
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 12
  ]
  edge [
    source 6
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 15
  ]
  edge [
    source 9
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 11
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 18
  ]
  edge [
    source 12
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 15
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 23
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 20
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
]

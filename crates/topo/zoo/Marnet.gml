Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Marnet"
  directed 0
  node [
    id 0
    label "Marnet PoP 0"
    Latitude 56.13595
    Longitude -7.06666
  ]
  node [
    id 1
    label "Marnet PoP 1"
    Latitude 57.0892
    Longitude 7.8517
  ]
  node [
    id 2
    label "Marnet PoP 2"
    Latitude 47.98645
    Longitude -8.07989
  ]
  node [
    id 3
    label "Marnet PoP 3"
    Latitude 40.59231
    Longitude -8.84641
  ]
  node [
    id 4
    label "Marnet PoP 4"
    Latitude 51.13514
    Longitude 13.21757
  ]
  node [
    id 5
    label "Marnet PoP 5"
    Latitude 55.70784
    Longitude 19.00795
  ]
  node [
    id 6
    label "Marnet PoP 6"
    Latitude 43.53185
    Longitude 0.14667
  ]
  node [
    id 7
    label "Marnet PoP 7"
    Latitude 50.31603
    Longitude 13.55359
  ]
  node [
    id 8
    label "Marnet PoP 8"
    Latitude 50.50326
    Longitude 5.03117
  ]
  node [
    id 9
    label "Marnet PoP 9"
    Latitude 40.13201
    Longitude 17.2206
  ]
  node [
    id 10
    label "Marnet PoP 10"
    Latitude 41.95642
    Longitude 16.50918
  ]
  node [
    id 11
    label "Marnet PoP 11"
    Latitude 58.06127
    Longitude 0.94764
  ]
  node [
    id 12
    label "Marnet PoP 12"
    Latitude 45.96736
    Longitude 1.91873
  ]
  node [
    id 13
    label "Marnet PoP 13"
    Latitude 58.95253
    Longitude 5.02028
  ]
  node [
    id 14
    label "Marnet PoP 14"
    Latitude 38.86667
    Longitude 24.76994
  ]
  node [
    id 15
    label "Marnet PoP 15"
    Latitude 48.31363
    Longitude -6.72247
  ]
  node [
    id 16
    label "Marnet PoP 16"
    Latitude 40.78749
    Longitude 9.6071
  ]
  node [
    id 17
    label "Marnet PoP 17"
    Latitude 45.45853
    Longitude -4.94086
  ]
  node [
    id 18
    label "Marnet PoP 18"
    Latitude 57.27704
    Longitude 14.77839
  ]
  node [
    id 19
    label "Marnet PoP 19"
    Latitude 55.40681
    Longitude -4.65686
  ]
  edge [
    source 0
    target 1
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 2
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 7
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 17
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 10
  ]
  edge [
    source 3
    target 13
  ]
  edge [
    source 4
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 12
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
]

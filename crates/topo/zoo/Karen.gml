Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Karen"
  directed 0
  node [
    id 0
    label "Karen PoP 0"
    Latitude -42.51591
    Longitude 170.61173
  ]
  node [
    id 1
    label "Karen PoP 1"
    Latitude -44.2351
    Longitude 175.23534
  ]
  node [
    id 2
    label "Karen PoP 2"
    Latitude -39.98809
    Longitude 170.32917
  ]
  node [
    id 3
    label "Karen PoP 3"
    Latitude -43.1332
    Longitude 174.54359
  ]
  node [
    id 4
    label "Karen PoP 4"
    Latitude -40.93524
    Longitude 173.51092
  ]
  node [
    id 5
    label "Karen PoP 5"
    Latitude -38.009
    Longitude 174.87683
  ]
  node [
    id 6
    label "Karen PoP 6"
    Latitude -38.0174
    Longitude 175.92764
  ]
  node [
    id 7
    label "Karen PoP 7"
    Latitude -45.41168
    Longitude 169.58649
  ]
  node [
    id 8
    label "Karen PoP 8"
    Latitude -42.52795
    Longitude 170.9255
  ]
  node [
    id 9
    label "Karen PoP 9"
    Latitude -43.69209
    Longitude 173.48621
  ]
  node [
    id 10
    label "Karen PoP 10"
    Latitude -41.67438
    Longitude 169.01785
  ]
  node [
    id 11
    label "Karen PoP 11"
    Latitude -40.51762
    Longitude 167.57592
  ]
  node [
    id 12
    label "Karen PoP 12"
    Latitude -39.87856
    Longitude 174.00489
  ]
  node [
    id 13
    label "Karen PoP 13"
    Latitude -41.77701
    Longitude 173.51131
  ]
  node [
    id 14
    label "Karen PoP 14"
    Latitude -36.98383
    Longitude 167.04698
  ]
  node [
    id 15
    label "Karen PoP 15"
    Latitude -40.38854
    Longitude 174.42372
  ]
  node [
    id 16
    label "Karen PoP 16"
    Latitude -36.96124
    Longitude 171.32785
  ]
  node [
    id 17
    label "Karen PoP 17"
    Latitude -40.63329
    Longitude 173.28034
  ]
  node [
    id 18
    label "Karen PoP 18"
    Latitude -39.95491
    Longitude 168.5317
  ]
  node [
    id 19
    label "Karen PoP 19"
    Latitude -41.76705
    Longitude 172.60169
  ]
  node [
    id 20
    label "Karen PoP 20"
    Latitude -41.10977
    Longitude 175.90095
  ]
  node [
    id 21
    label "Karen PoP 21"
    Latitude -37.11207
    Longitude 172.33938
  ]
  node [
    id 22
    label "Karen PoP 22"
    Latitude -42.24602
    Longitude 172.8517
  ]
  node [
    id 23
    label "Karen PoP 23"
    Latitude -36.51573
    Longitude 167.56844
  ]
  node [
    id 24
    label "Karen PoP 24"
    Latitude -37.47329
    Longitude 168.004
  ]
  edge [
    source 0
    target 1
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 21
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 16
  ]
  edge [
    source 9
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 10
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 13
    target 24
  ]
  edge [
    source 14
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 22
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 22
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "York"
  directed 0
  node [
    id 0
    label "York PoP 0"
    Latitude 56.27357
    Longitude 23.59154
  ]
  node [
    id 1
    label "York PoP 1"
    Latitude 42.07797
    Longitude 22.14142
  ]
  node [
    id 2
    label "York PoP 2"
    Latitude 46.17757
    Longitude -5.68497
  ]
  node [
    id 3
    label "York PoP 3"
    Latitude 55.41519
    Longitude -4.15875
  ]
  node [
    id 4
    label "York PoP 4"
    Latitude 45.78848
    Longitude -7.7333
  ]
  node [
    id 5
    label "York PoP 5"
    Latitude 38.18342
    Longitude 7.91001
  ]
  node [
    id 6
    label "York PoP 6"
    Latitude 53.20374
    Longitude 6.30744
  ]
  node [
    id 7
    label "York PoP 7"
    Latitude 50.08491
    Longitude 3.55577
  ]
  node [
    id 8
    label "York PoP 8"
    Latitude 52.61734
    Longitude 22.27722
  ]
  node [
    id 9
    label "York PoP 9"
    Latitude 44.81386
    Longitude 8.87465
  ]
  node [
    id 10
    label "York PoP 10"
    Latitude 55.88629
    Longitude -2.57625
  ]
  node [
    id 11
    label "York PoP 11"
    Latitude 54.58648
    Longitude 2.11007
  ]
  node [
    id 12
    label "York PoP 12"
    Latitude 42.60655
    Longitude 21.95406
  ]
  node [
    id 13
    label "York PoP 13"
    Latitude 52.00899
    Longitude -0.80734
  ]
  node [
    id 14
    label "York PoP 14"
    Latitude 49.79219
    Longitude -2.6108
  ]
  node [
    id 15
    label "York PoP 15"
    Latitude 55.07765
    Longitude -8.74614
  ]
  node [
    id 16
    label "York PoP 16"
    Latitude 47.84453
    Longitude -8.7028
  ]
  node [
    id 17
    label "York PoP 17"
    Latitude 48.14985
    Longitude 9.76972
  ]
  node [
    id 18
    label "York PoP 18"
    Latitude 55.29539
    Longitude -3.22417
  ]
  node [
    id 19
    label "York PoP 19"
    Latitude 38.10636
    Longitude -6.15027
  ]
  node [
    id 20
    label "York PoP 20"
    Latitude 51.69854
    Longitude -1.24167
  ]
  node [
    id 21
    label "York PoP 21"
    Latitude 40.01959
    Longitude 14.20235
  ]
  node [
    id 22
    label "York PoP 22"
    Latitude 39.94905
    Longitude 21.67479
  ]
  edge [
    source 0
    target 1
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 22
  ]
  edge [
    source 1
    target 2
  ]
  edge [
    source 1
    target 17
  ]
  edge [
    source 1
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 21
  ]
  edge [
    source 4
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 12
  ]
  edge [
    source 4
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 16
  ]
  edge [
    source 7
    target 8
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 21
  ]
  edge [
    source 9
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Missouri"
  directed 0
  node [
    id 0
    label "Missouri PoP 0"
    Latitude 43.66116
    Longitude -111.48365
  ]
  node [
    id 1
    label "Missouri PoP 1"
    Latitude 38.34761
    Longitude -93.39321
  ]
  node [
    id 2
    label "Missouri PoP 2"
    Latitude 40.26001
    Longitude -110.66148
  ]
  node [
    id 3
    label "Missouri PoP 3"
    Latitude 39.82845
    Longitude -84.04861
  ]
  node [
    id 4
    label "Missouri PoP 4"
    Latitude 40.67245
    Longitude -79.66404
  ]
  node [
    id 5
    label "Missouri PoP 5"
    Latitude 35.63875
    Longitude -94.16956
  ]
  node [
    id 6
    label "Missouri PoP 6"
    Latitude 34.96866
    Longitude -85.56025
  ]
  node [
    id 7
    label "Missouri PoP 7"
    Latitude 30.23149
    Longitude -93.01514
  ]
  node [
    id 8
    label "Missouri PoP 8"
    Latitude 34.62148
    Longitude -93.44023
  ]
  node [
    id 9
    label "Missouri PoP 9"
    Latitude 33.16693
    Longitude -81.20403
  ]
  node [
    id 10
    label "Missouri PoP 10"
    Latitude 43.51458
    Longitude -101.27548
  ]
  node [
    id 11
    label "Missouri PoP 11"
    Latitude 37.9807
    Longitude -94.31616
  ]
  node [
    id 12
    label "Missouri PoP 12"
    Latitude 30.84896
    Longitude -96.18407
  ]
  node [
    id 13
    label "Missouri PoP 13"
    Latitude 42.4668
    Longitude -121.55262
  ]
  node [
    id 14
    label "Missouri PoP 14"
    Latitude 31.62078
    Longitude -100.64043
  ]
  node [
    id 15
    label "Missouri PoP 15"
    Latitude 33.28717
    Longitude -82.92245
  ]
  node [
    id 16
    label "Missouri PoP 16"
    Latitude 32.73123
    Longitude -120.55805
  ]
  node [
    id 17
    label "Missouri PoP 17"
    Latitude 43.02348
    Longitude -97.8302
  ]
  node [
    id 18
    label "Missouri PoP 18"
    Latitude 43.25355
    Longitude -91.34863
  ]
  node [
    id 19
    label "Missouri PoP 19"
    Latitude 43.2055
    Longitude -113.6888
  ]
  node [
    id 20
    label "Missouri PoP 20"
    Latitude 33.10435
    Longitude -119.47515
  ]
  node [
    id 21
    label "Missouri PoP 21"
    Latitude 30.15083
    Longitude -104.24395
  ]
  node [
    id 22
    label "Missouri PoP 22"
    Latitude 35.23456
    Longitude -111.06404
  ]
  node [
    id 23
    label "Missouri PoP 23"
    Latitude 39.80691
    Longitude -92.69655
  ]
  node [
    id 24
    label "Missouri PoP 24"
    Latitude 43.73894
    Longitude -111.0789
  ]
  node [
    id 25
    label "Missouri PoP 25"
    Latitude 44.19899
    Longitude -120.78308
  ]
  node [
    id 26
    label "Missouri PoP 26"
    Latitude 34.74953
    Longitude -111.34119
  ]
  node [
    id 27
    label "Missouri PoP 27"
    Latitude 32.25256
    Longitude -77.18509
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 1
    target 27
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 4
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 12
  ]
  edge [
    source 6
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 7
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 10
  ]
  edge [
    source 9
    target 15
  ]
  edge [
    source 9
    target 17
  ]
  edge [
    source 9
    target 26
  ]
  edge [
    source 10
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 11
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
  ]
  edge [
    source 18
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 26
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 24
    target 25
  ]
  edge [
    source 25
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 26
    target 27
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Niif"
  directed 0
  node [
    id 0
    label "Niif PoP 0"
    Latitude 58.4855
    Longitude -3.9639
  ]
  node [
    id 1
    label "Niif PoP 1"
    Latitude 58.27372
    Longitude 23.87553
  ]
  node [
    id 2
    label "Niif PoP 2"
    Latitude 43.26422
    Longitude -1.57571
  ]
  node [
    id 3
    label "Niif PoP 3"
    Latitude 50.8079
    Longitude 11.23494
  ]
  node [
    id 4
    label "Niif PoP 4"
    Latitude 40.10741
    Longitude 16.54755
  ]
  node [
    id 5
    label "Niif PoP 5"
    Latitude 44.13173
    Longitude -1.10555
  ]
  node [
    id 6
    label "Niif PoP 6"
    Latitude 50.00403
    Longitude -1.2648
  ]
  node [
    id 7
    label "Niif PoP 7"
    Latitude 55.76328
    Longitude -5.07021
  ]
  node [
    id 8
    label "Niif PoP 8"
    Latitude 45.9364
    Longitude 20.37857
  ]
  node [
    id 9
    label "Niif PoP 9"
    Latitude 38.38347
    Longitude -0.98873
  ]
  node [
    id 10
    label "Niif PoP 10"
    Latitude 51.93724
    Longitude -4.9103
  ]
  node [
    id 11
    label "Niif PoP 11"
    Latitude 45.26104
    Longitude 3.98906
  ]
  node [
    id 12
    label "Niif PoP 12"
    Latitude 48.27015
    Longitude -7.24809
  ]
  node [
    id 13
    label "Niif PoP 13"
    Latitude 56.27862
    Longitude 8.59446
  ]
  node [
    id 14
    label "Niif PoP 14"
    Latitude 58.59244
    Longitude 3.53329
  ]
  node [
    id 15
    label "Niif PoP 15"
    Latitude 46.25524
    Longitude -4.6451
  ]
  node [
    id 16
    label "Niif PoP 16"
    Latitude 55.21727
    Longitude -5.89676
  ]
  node [
    id 17
    label "Niif PoP 17"
    Latitude 46.25441
    Longitude -4.20412
  ]
  node [
    id 18
    label "Niif PoP 18"
    Latitude 51.38869
    Longitude 10.5139
  ]
  node [
    id 19
    label "Niif PoP 19"
    Latitude 39.33168
    Longitude 24.86474
  ]
  node [
    id 20
    label "Niif PoP 20"
    Latitude 55.21238
    Longitude 23.41273
  ]
  node [
    id 21
    label "Niif PoP 21"
    Latitude 52.25434
    Longitude 22.57191
  ]
  node [
    id 22
    label "Niif PoP 22"
    Latitude 51.38674
    Longitude 0.34099
  ]
  node [
    id 23
    label "Niif PoP 23"
    Latitude 45.07867
    Longitude 9.94914
  ]
  node [
    id 24
    label "Niif PoP 24"
    Latitude 51.35554
    Longitude 15.31526
  ]
  node [
    id 25
    label "Niif PoP 25"
    Latitude 59.82429
    Longitude 17.62823
  ]
  node [
    id 26
    label "Niif PoP 26"
    Latitude 39.93643
    Longitude 11.23478
  ]
  node [
    id 27
    label "Niif PoP 27"
    Latitude 58.19582
    Longitude 24.13595
  ]
  edge [
    source 0
    target 1
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 13
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 24
  ]
  edge [
    source 3
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 9
  ]
  edge [
    source 3
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 18
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 7
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 7
    target 27
  ]
  edge [
    source 8
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 25
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 10
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 21
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 25
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 14
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 15
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 17
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 24
  ]
  edge [
    source 19
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

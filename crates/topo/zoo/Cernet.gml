Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Cernet"
  directed 0
  node [
    id 0
    label "Cernet PoP 0"
    Latitude 22.62408
    Longitude 101.50554
  ]
  node [
    id 1
    label "Cernet PoP 1"
    Latitude 29.48253
    Longitude 102.43168
  ]
  node [
    id 2
    label "Cernet PoP 2"
    Latitude 37.7015
    Longitude 101.70247
  ]
  node [
    id 3
    label "Cernet PoP 3"
    Latitude 27.37149
    Longitude 108.98256
  ]
  node [
    id 4
    label "Cernet PoP 4"
    Latitude 38.18318
    Longitude 105.71969
  ]
  node [
    id 5
    label "Cernet PoP 5"
    Latitude 43.89804
    Longitude 120.2031
  ]
  node [
    id 6
    label "Cernet PoP 6"
    Latitude 25.47671
    Longitude 122.98773
  ]
  node [
    id 7
    label "Cernet PoP 7"
    Latitude 44.99963
    Longitude 118.53751
  ]
  node [
    id 8
    label "Cernet PoP 8"
    Latitude 29.65755
    Longitude 101.92822
  ]
  node [
    id 9
    label "Cernet PoP 9"
    Latitude 26.15932
    Longitude 123.28748
  ]
  node [
    id 10
    label "Cernet PoP 10"
    Latitude 37.86766
    Longitude 102.83822
  ]
  node [
    id 11
    label "Cernet PoP 11"
    Latitude 32.75786
    Longitude 123.85556
  ]
  node [
    id 12
    label "Cernet PoP 12"
    Latitude 26.53297
    Longitude 106.75138
  ]
  node [
    id 13
    label "Cernet PoP 13"
    Latitude 22.08186
    Longitude 119.08309
  ]
  node [
    id 14
    label "Cernet PoP 14"
    Latitude 40.96408
    Longitude 119.98521
  ]
  node [
    id 15
    label "Cernet PoP 15"
    Latitude 44.05811
    Longitude 111.24666
  ]
  node [
    id 16
    label "Cernet PoP 16"
    Latitude 35.00266
    Longitude 105.6284
  ]
  node [
    id 17
    label "Cernet PoP 17"
    Latitude 29.93277
    Longitude 104.92946
  ]
  node [
    id 18
    label "Cernet PoP 18"
    Latitude 26.97934
    Longitude 110.89934
  ]
  node [
    id 19
    label "Cernet PoP 19"
    Latitude 35.57928
    Longitude 123.6197
  ]
  node [
    id 20
    label "Cernet PoP 20"
    Latitude 22.26607
    Longitude 111.54484
  ]
  node [
    id 21
    label "Cernet PoP 21"
    Latitude 33.18098
    Longitude 111.19694
  ]
  node [
    id 22
    label "Cernet PoP 22"
    Latitude 42.41527
    Longitude 110.00371
  ]
  node [
    id 23
    label "Cernet PoP 23"
    Latitude 35.53001
    Longitude 102.37958
  ]
  node [
    id 24
    label "Cernet PoP 24"
    Latitude 36.26983
    Longitude 113.16852
  ]
  node [
    id 25
    label "Cernet PoP 25"
    Latitude 25.41544
    Longitude 100.02853
  ]
  node [
    id 26
    label "Cernet PoP 26"
    Latitude 27.25935
    Longitude 116.90262
  ]
  node [
    id 27
    label "Cernet PoP 27"
    Latitude 28.60381
    Longitude 101.93895
  ]
  edge [
    source 0
    target 1
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 12
  ]
  edge [
    source 0
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 23
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 5
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 12
  ]
  edge [
    source 6
    target 18
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 23
  ]
  edge [
    source 8
    target 24
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 13
  ]
  edge [
    source 12
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 15
    target 16
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 17
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 24
  ]
  edge [
    source 19
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 21
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Latnet"
  directed 0
  node [
    id 0
    label "Latnet PoP 0"
    Latitude 56.75529
    Longitude 20.84177
  ]
  node [
    id 1
    label "Latnet PoP 1"
    Latitude 52.7706
    Longitude 18.51835
  ]
  node [
    id 2
    label "Latnet PoP 2"
    Latitude 59.83394
    Longitude -8.66654
  ]
  node [
    id 3
    label "Latnet PoP 3"
    Latitude 43.87295
    Longitude 2.99784
  ]
  node [
    id 4
    label "Latnet PoP 4"
    Latitude 40.9677
    Longitude 18.53654
  ]
  node [
    id 5
    label "Latnet PoP 5"
    Latitude 59.52068
    Longitude 21.07682
  ]
  node [
    id 6
    label "Latnet PoP 6"
    Latitude 40.70518
    Longitude 8.69214
  ]
  node [
    id 7
    label "Latnet PoP 7"
    Latitude 55.58373
    Longitude 10.78537
  ]
  node [
    id 8
    label "Latnet PoP 8"
    Latitude 55.59706
    Longitude 19.15511
  ]
  node [
    id 9
    label "Latnet PoP 9"
    Latitude 51.55526
    Longitude 16.10518
  ]
  node [
    id 10
    label "Latnet PoP 10"
    Latitude 40.19859
    Longitude 20.32297
  ]
  node [
    id 11
    label "Latnet PoP 11"
    Latitude 48.20607
    Longitude 20.81284
  ]
  node [
    id 12
    label "Latnet PoP 12"
    Latitude 56.28737
    Longitude -3.40331
  ]
  node [
    id 13
    label "Latnet PoP 13"
    Latitude 48.19165
    Longitude 7.09496
  ]
  node [
    id 14
    label "Latnet PoP 14"
    Latitude 42.33153
    Longitude -4.81325
  ]
  node [
    id 15
    label "Latnet PoP 15"
    Latitude 57.44907
    Longitude 12.56431
  ]
  node [
    id 16
    label "Latnet PoP 16"
    Latitude 56.99663
    Longitude -2.26852
  ]
  node [
    id 17
    label "Latnet PoP 17"
    Latitude 49.87036
    Longitude 19.33984
  ]
  node [
    id 18
    label "Latnet PoP 18"
    Latitude 43.91511
    Longitude 17.45743
  ]
  node [
    id 19
    label "Latnet PoP 19"
    Latitude 51.30809
    Longitude 5.78303
  ]
  node [
    id 20
    label "Latnet PoP 20"
    Latitude 52.13872
    Longitude 4.0794
  ]
  node [
    id 21
    label "Latnet PoP 21"
    Latitude 58.32073
    Longitude 14.7384
  ]
  node [
    id 22
    label "Latnet PoP 22"
    Latitude 59.06174
    Longitude 23.66002
  ]
  node [
    id 23
    label "Latnet PoP 23"
    Latitude 40.25772
    Longitude 14.42406
  ]
  node [
    id 24
    label "Latnet PoP 24"
    Latitude 42.52176
    Longitude 11.36061
  ]
  node [
    id 25
    label "Latnet PoP 25"
    Latitude 43.21579
    Longitude -8.38848
  ]
  node [
    id 26
    label "Latnet PoP 26"
    Latitude 41.85781
    Longitude 10.39256
  ]
  node [
    id 27
    label "Latnet PoP 27"
    Latitude 46.77348
    Longitude -2.08179
  ]
  edge [
    source 0
    target 1
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 18
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 19
  ]
  edge [
    source 1
    target 22
  ]
  edge [
    source 2
    target 3
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 2
    target 6
  ]
  edge [
    source 3
    target 4
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 5
  ]
  edge [
    source 4
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 16
  ]
  edge [
    source 6
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 24
  ]
  edge [
    source 7
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 7
    target 27
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 19
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 25
  ]
  edge [
    source 9
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 10
    target 27
  ]
  edge [
    source 11
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 23
  ]
  edge [
    source 13
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 21
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 16
  ]
  edge [
    source 15
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 15
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 17
    target 18
  ]
  edge [
    source 18
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 22
    target 23
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Ulaknet"
  directed 0
  node [
    id 0
    label "Ulaknet PoP 0"
    Latitude 36.68349
    Longitude 29.527
  ]
  node [
    id 1
    label "Ulaknet PoP 1"
    Latitude 37.4085
    Longitude 38.56166
  ]
  node [
    id 2
    label "Ulaknet PoP 2"
    Latitude 40.42788
    Longitude 42.95459
  ]
  node [
    id 3
    label "Ulaknet PoP 3"
    Latitude 39.7542
    Longitude 33.5119
  ]
  node [
    id 4
    label "Ulaknet PoP 4"
    Latitude 40.96104
    Longitude 31.82843
  ]
  node [
    id 5
    label "Ulaknet PoP 5"
    Latitude 40.36487
    Longitude 27.38878
  ]
  node [
    id 6
    label "Ulaknet PoP 6"
    Latitude 40.28805
    Longitude 27.215
  ]
  node [
    id 7
    label "Ulaknet PoP 7"
    Latitude 40.99678
    Longitude 42.19787
  ]
  node [
    id 8
    label "Ulaknet PoP 8"
    Latitude 39.07353
    Longitude 39.6879
  ]
  node [
    id 9
    label "Ulaknet PoP 9"
    Latitude 38.50957
    Longitude 34.03917
  ]
  node [
    id 10
    label "Ulaknet PoP 10"
    Latitude 38.22581
    Longitude 35.31587
  ]
  node [
    id 11
    label "Ulaknet PoP 11"
    Latitude 37.5772
    Longitude 28.45267
  ]
  node [
    id 12
    label "Ulaknet PoP 12"
    Latitude 40.7314
    Longitude 27.00539
  ]
  node [
    id 13
    label "Ulaknet PoP 13"
    Latitude 37.04514
    Longitude 40.78562
  ]
  node [
    id 14
    label "Ulaknet PoP 14"
    Latitude 36.03881
    Longitude 36.82556
  ]
  node [
    id 15
    label "Ulaknet PoP 15"
    Latitude 39.26888
    Longitude 35.76107
  ]
  node [
    id 16
    label "Ulaknet PoP 16"
    Latitude 39.74036
    Longitude 40.01391
  ]
  node [
    id 17
    label "Ulaknet PoP 17"
    Latitude 38.30638
    Longitude 35.51545
  ]
  node [
    id 18
    label "Ulaknet PoP 18"
    Latitude 39.63437
    Longitude 39.71009
  ]
  node [
    id 19
    label "Ulaknet PoP 19"
    Latitude 36.92923
    Longitude 37.81054
  ]
  node [
    id 20
    label "Ulaknet PoP 20"
    Latitude 40.13704
    Longitude 42.75333
  ]
  node [
    id 21
    label "Ulaknet PoP 21"
    Latitude 36.73062
    Longitude 39.40269
  ]
  node [
    id 22
    label "Ulaknet PoP 22"
    Latitude 36.41214
    Longitude 42.11805
  ]
  node [
    id 23
    label "Ulaknet PoP 23"
    Latitude 36.86753
    Longitude 37.48734
  ]
  node [
    id 24
    label "Ulaknet PoP 24"
    Latitude 36.56328
    Longitude 38.37783
  ]
  node [
    id 25
    label "Ulaknet PoP 25"
    Latitude 39.36171
    Longitude 40.75391
  ]
  node [
    id 26
    label "Ulaknet PoP 26"
    Latitude 36.73021
    Longitude 37.71941
  ]
  node [
    id 27
    label "Ulaknet PoP 27"
    Latitude 40.51633
    Longitude 36.00481
  ]
  edge [
    source 0
    target 1
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 4
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 6
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 1
    target 19
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 24
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 7
  ]
  edge [
    source 3
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 3
    target 27
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 9
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 27
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 12
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 7
    target 15
  ]
  edge [
    source 8
    target 9
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 15
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 11
    target 12
  ]
  edge [
    source 11
    target 16
  ]
  edge [
    source 11
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 18
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 13
    target 16
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 13
    target 21
  ]
  edge [
    source 14
    target 15
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 15
    target 16
  ]
  edge [
    source 15
    target 19
  ]
  edge [
    source 15
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 17
    target 18
  ]
  edge [
    source 18
    target 19
  ]
  edge [
    source 18
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
  ]
  edge [
    source 19
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 21
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 22
    target 24
  ]
  edge [
    source 23
    target 24
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 25
    target 26
  ]
  edge [
    source 26
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Digex"
  directed 0
  node [
    id 0
    label "Digex PoP 0"
    Latitude 41.66205
    Longitude -91.9935
  ]
  node [
    id 1
    label "Digex PoP 1"
    Latitude 42.7645
    Longitude -114.25282
  ]
  node [
    id 2
    label "Digex PoP 2"
    Latitude 33.97494
    Longitude -105.91346
  ]
  node [
    id 3
    label "Digex PoP 3"
    Latitude 40.57675
    Longitude -78.14219
  ]
  node [
    id 4
    label "Digex PoP 4"
    Latitude 41.30054
    Longitude -80.99148
  ]
  node [
    id 5
    label "Digex PoP 5"
    Latitude 30.4662
    Longitude -108.62782
  ]
  node [
    id 6
    label "Digex PoP 6"
    Latitude 35.44109
    Longitude -74.63459
  ]
  node [
    id 7
    label "Digex PoP 7"
    Latitude 46.64851
    Longitude -100.20402
  ]
  node [
    id 8
    label "Digex PoP 8"
    Latitude 45.65956
    Longitude -77.7891
  ]
  node [
    id 9
    label "Digex PoP 9"
    Latitude 41.94813
    Longitude -93.32593
  ]
  node [
    id 10
    label "Digex PoP 10"
    Latitude 43.39986
    Longitude -93.37974
  ]
  node [
    id 11
    label "Digex PoP 11"
    Latitude 38.12169
    Longitude -85.1332
  ]
  node [
    id 12
    label "Digex PoP 12"
    Latitude 37.83561
    Longitude -90.16762
  ]
  node [
    id 13
    label "Digex PoP 13"
    Latitude 45.4973
    Longitude -98.91652
  ]
  node [
    id 14
    label "Digex PoP 14"
    Latitude 30.20586
    Longitude -116.68436
  ]
  node [
    id 15
    label "Digex PoP 15"
    Latitude 46.78705
    Longitude -115.16721
  ]
  node [
    id 16
    label "Digex PoP 16"
    Latitude 36.41451
    Longitude -87.28054
  ]
  node [
    id 17
    label "Digex PoP 17"
    Latitude 44.42185
    Longitude -103.52285
  ]
  node [
    id 18
    label "Digex PoP 18"
    Latitude 30.03476
    Longitude -108.28072
  ]
  node [
    id 19
    label "Digex PoP 19"
    Latitude 46.90964
    Longitude -106.32448
  ]
  node [
    id 20
    label "Digex PoP 20"
    Latitude 43.25393
    Longitude -109.00437
  ]
  node [
    id 21
    label "Digex PoP 21"
    Latitude 39.29994
    Longitude -83.02447
  ]
  node [
    id 22
    label "Digex PoP 22"
    Latitude 34.7812
    Longitude -94.1033
  ]
  node [
    id 23
    label "Digex PoP 23"
    Latitude 39.11822
    Longitude -117.83624
  ]
  node [
    id 24
    label "Digex PoP 24"
    Latitude 34.03766
    Longitude -79.64811
  ]
  node [
    id 25
    label "Digex PoP 25"
    Latitude 39.12297
    Longitude -80.01881
  ]
  node [
    id 26
    label "Digex PoP 26"
    Latitude 39.54147
    Longitude -114.0773
  ]
  node [
    id 27
    label "Digex PoP 27"
    Latitude 31.71268
    Longitude -78.5307
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 4
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 0
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 21
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 3
    target 4
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 3
    target 7
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 27
  ]
  edge [
    source 4
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 11
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 7
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 6
    target 13
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 6
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 9
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 11
  ]
  edge [
    source 10
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 16
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 12
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 14
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 19
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 22
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 16
    target 17
  ]
  edge [
    source 17
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 18
    target 22
  ]
  edge [
    source 18
    target 25
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 21
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 23
    target 24
  ]
  edge [
    source 24
    target 25
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
]

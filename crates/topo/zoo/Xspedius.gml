Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Xspedius"
  directed 0
  node [
    id 0
    label "Xspedius PoP 0"
    Latitude 32.76002
    Longitude -86.74804
  ]
  node [
    id 1
    label "Xspedius PoP 1"
    Latitude 39.00627
    Longitude -79.21846
  ]
  node [
    id 2
    label "Xspedius PoP 2"
    Latitude 34.3378
    Longitude -83.81454
  ]
  node [
    id 3
    label "Xspedius PoP 3"
    Latitude 33.86981
    Longitude -103.24509
  ]
  node [
    id 4
    label "Xspedius PoP 4"
    Latitude 41.68395
    Longitude -110.27431
  ]
  node [
    id 5
    label "Xspedius PoP 5"
    Latitude 45.40569
    Longitude -99.14677
  ]
  node [
    id 6
    label "Xspedius PoP 6"
    Latitude 34.15339
    Longitude -94.97438
  ]
  node [
    id 7
    label "Xspedius PoP 7"
    Latitude 35.35387
    Longitude -89.34541
  ]
  node [
    id 8
    label "Xspedius PoP 8"
    Latitude 32.96188
    Longitude -112.83709
  ]
  node [
    id 9
    label "Xspedius PoP 9"
    Latitude 45.76704
    Longitude -106.7911
  ]
  node [
    id 10
    label "Xspedius PoP 10"
    Latitude 30.18581
    Longitude -100.91907
  ]
  node [
    id 11
    label "Xspedius PoP 11"
    Latitude 41.35412
    Longitude -109.81226
  ]
  node [
    id 12
    label "Xspedius PoP 12"
    Latitude 30.33518
    Longitude -103.56298
  ]
  node [
    id 13
    label "Xspedius PoP 13"
    Latitude 45.05696
    Longitude -90.52416
  ]
  node [
    id 14
    label "Xspedius PoP 14"
    Latitude 44.42904
    Longitude -79.85301
  ]
  node [
    id 15
    label "Xspedius PoP 15"
    Latitude 33.22998
    Longitude -101.43548
  ]
  node [
    id 16
    label "Xspedius PoP 16"
    Latitude 38.50688
    Longitude -91.57676
  ]
  node [
    id 17
    label "Xspedius PoP 17"
    Latitude 41.25972
    Longitude -90.74292
  ]
  node [
    id 18
    label "Xspedius PoP 18"
    Latitude 45.03879
    Longitude -78.34632
  ]
  node [
    id 19
    label "Xspedius PoP 19"
    Latitude 32.90357
    Longitude -99.25777
  ]
  node [
    id 20
    label "Xspedius PoP 20"
    Latitude 39.63916
    Longitude -90.58212
  ]
  node [
    id 21
    label "Xspedius PoP 21"
    Latitude 44.95555
    Longitude -81.07702
  ]
  node [
    id 22
    label "Xspedius PoP 22"
    Latitude 30.33022
    Longitude -94.53389
  ]
  node [
    id 23
    label "Xspedius PoP 23"
    Latitude 44.67346
    Longitude -115.8744
  ]
  node [
    id 24
    label "Xspedius PoP 24"
    Latitude 42.68974
    Longitude -115.85079
  ]
  node [
    id 25
    label "Xspedius PoP 25"
    Latitude 34.52584
    Longitude -101.57798
  ]
  node [
    id 26
    label "Xspedius PoP 26"
    Latitude 30.20467
    Longitude -104.21309
  ]
  node [
    id 27
    label "Xspedius PoP 27"
    Latitude 31.63877
    Longitude -89.49529
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 11
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 18
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 1
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 2
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 4
  ]
  edge [
    source 3
    target 11
  ]
  edge [
    source 3
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 4
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 4
    target 21
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 4
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 9
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 7
  ]
  edge [
    source 6
    target 14
  ]
  edge [
    source 6
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 6
    target 27
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 9
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 20
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 10
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 11
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 23
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 15
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 23
  ]
  edge [
    source 15
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 26
  ]
  edge [
    source 19
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 21
    target 22
  ]
  edge [
    source 22
    target 23
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 23
    target 24
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 25
    target 26
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 26
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
]

Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Uninett2011"
  directed 0
  node [
    id 0
    label "Uninett2011 PoP 0"
    Latitude 58.61184
    Longitude -0.62558
  ]
  node [
    id 1
    label "Uninett2011 PoP 1"
    Latitude 38.5891
    Longitude 11.28139
  ]
  node [
    id 2
    label "Uninett2011 PoP 2"
    Latitude 54.79357
    Longitude 12.17783
  ]
  node [
    id 3
    label "Uninett2011 PoP 3"
    Latitude 44.93903
    Longitude 13.98203
  ]
  node [
    id 4
    label "Uninett2011 PoP 4"
    Latitude 53.72072
    Longitude 23.79464
  ]
  node [
    id 5
    label "Uninett2011 PoP 5"
    Latitude 57.20016
    Longitude -0.29275
  ]
  node [
    id 6
    label "Uninett2011 PoP 6"
    Latitude 45.76153
    Longitude 12.61458
  ]
  node [
    id 7
    label "Uninett2011 PoP 7"
    Latitude 59.20317
    Longitude -3.58379
  ]
  node [
    id 8
    label "Uninett2011 PoP 8"
    Latitude 55.59731
    Longitude 22.90941
  ]
  node [
    id 9
    label "Uninett2011 PoP 9"
    Latitude 58.92498
    Longitude -5.55206
  ]
  node [
    id 10
    label "Uninett2011 PoP 10"
    Latitude 46.75322
    Longitude 15.37143
  ]
  node [
    id 11
    label "Uninett2011 PoP 11"
    Latitude 55.55961
    Longitude -6.07542
  ]
  node [
    id 12
    label "Uninett2011 PoP 12"
    Latitude 51.42126
    Longitude -0.15086
  ]
  node [
    id 13
    label "Uninett2011 PoP 13"
    Latitude 53.85175
    Longitude 17.2258
  ]
  node [
    id 14
    label "Uninett2011 PoP 14"
    Latitude 46.875
    Longitude 10.45176
  ]
  node [
    id 15
    label "Uninett2011 PoP 15"
    Latitude 40.58338
    Longitude 5.26502
  ]
  node [
    id 16
    label "Uninett2011 PoP 16"
    Latitude 51.25232
    Longitude -4.20703
  ]
  node [
    id 17
    label "Uninett2011 PoP 17"
    Latitude 47.36932
    Longitude 0.95399
  ]
  node [
    id 18
    label "Uninett2011 PoP 18"
    Latitude 51.59198
    Longitude -2.10556
  ]
  node [
    id 19
    label "Uninett2011 PoP 19"
    Latitude 58.52478
    Longitude 1.20169
  ]
  node [
    id 20
    label "Uninett2011 PoP 20"
    Latitude 53.97819
    Longitude 9.87889
  ]
  node [
    id 21
    label "Uninett2011 PoP 21"
    Latitude 38.35172
    Longitude 11.23379
  ]
  node [
    id 22
    label "Uninett2011 PoP 22"
    Latitude 54.24216
    Longitude 9.95729
  ]
  node [
    id 23
    label "Uninett2011 PoP 23"
    Latitude 49.70202
    Longitude 13.51033
  ]
  node [
    id 24
    label "Uninett2011 PoP 24"
    Latitude 53.89175
    Longitude 20.40982
  ]
  node [
    id 25
    label "Uninett2011 PoP 25"
    Latitude 52.16507
    Longitude 0.66559
  ]
  node [
    id 26
    label "Uninett2011 PoP 26"
    Latitude 47.09976
    Longitude 1.82792
  ]
  node [
    id 27
    label "Uninett2011 PoP 27"
    Latitude 53.60301
    Longitude -0.90625
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 2
  ]
  edge [
    source 0
    target 9
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 0
    target 27
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 27
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 3
  ]
  edge [
    source 2
    target 10
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 2
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 3
    target 4
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 5
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 3
    target 12
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 3
    target 13
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 6
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 5
    target 24
  ]
  edge [
    source 5
    target 26
  ]
  edge [
    source 6
    target 7
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 6
    target 8
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 6
    target 15
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 7
    target 8
  ]
  edge [
    source 8
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 8
    target 27
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 9
    target 11
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 13
  ]
  edge [
    source 9
    target 18
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 11
    target 17
  ]
  edge [
    source 12
    target 13
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 12
    target 14
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 13
    target 14
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 13
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 16
  ]
  edge [
    source 15
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 15
    target 24
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 18
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 27
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 23
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 23
    target 24
  ]
  edge [
    source 24
    target 25
  ]
  edge [
    source 24
    target 26
  ]
  edge [
    source 25
    target 26
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 26
    target 27
  ]
]

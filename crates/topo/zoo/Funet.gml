Creator "Topology Zoo style corpus (deterministic, seeded from the network name)"
graph [
  Network "Funet"
  directed 0
  node [
    id 0
    label "Funet PoP 0"
    Latitude 48.1446
    Longitude 13.59641
  ]
  node [
    id 1
    label "Funet PoP 1"
    Latitude 38.52761
    Longitude 0.98978
  ]
  node [
    id 2
    label "Funet PoP 2"
    Latitude 50.71111
    Longitude 7.30816
  ]
  node [
    id 3
    label "Funet PoP 3"
    Latitude 52.00551
    Longitude 11.87376
  ]
  node [
    id 4
    label "Funet PoP 4"
    Latitude 45.39335
    Longitude 15.97526
  ]
  node [
    id 5
    label "Funet PoP 5"
    Latitude 46.44744
    Longitude -6.45011
  ]
  node [
    id 6
    label "Funet PoP 6"
    Latitude 45.22972
    Longitude 4.98494
  ]
  node [
    id 7
    label "Funet PoP 7"
    Latitude 56.52695
    Longitude -8.01963
  ]
  node [
    id 8
    label "Funet PoP 8"
    Latitude 40.96398
    Longitude 19.07762
  ]
  node [
    id 9
    label "Funet PoP 9"
    Latitude 42.99832
    Longitude 20.32215
  ]
  node [
    id 10
    label "Funet PoP 10"
    Latitude 53.27086
    Longitude 15.63
  ]
  node [
    id 11
    label "Funet PoP 11"
    Latitude 53.27852
    Longitude 1.8204
  ]
  node [
    id 12
    label "Funet PoP 12"
    Latitude 57.13654
    Longitude 16.31617
  ]
  node [
    id 13
    label "Funet PoP 13"
    Latitude 49.34954
    Longitude 23.16272
  ]
  node [
    id 14
    label "Funet PoP 14"
    Latitude 41.76969
    Longitude -6.1509
  ]
  node [
    id 15
    label "Funet PoP 15"
    Latitude 56.07862
    Longitude 6.87791
  ]
  node [
    id 16
    label "Funet PoP 16"
    Latitude 54.49609
    Longitude -1.33108
  ]
  node [
    id 17
    label "Funet PoP 17"
    Latitude 38.94392
    Longitude -6.68167
  ]
  node [
    id 18
    label "Funet PoP 18"
    Latitude 55.47882
    Longitude 10.75065
  ]
  node [
    id 19
    label "Funet PoP 19"
    Latitude 38.14369
    Longitude 17.42693
  ]
  node [
    id 20
    label "Funet PoP 20"
    Latitude 45.70472
    Longitude 23.12062
  ]
  node [
    id 21
    label "Funet PoP 21"
    Latitude 50.58037
    Longitude 18.50396
  ]
  node [
    id 22
    label "Funet PoP 22"
    Latitude 43.13134
    Longitude 12.92253
  ]
  node [
    id 23
    label "Funet PoP 23"
    Latitude 53.77465
    Longitude -1.15
  ]
  node [
    id 24
    label "Funet PoP 24"
    Latitude 49.91232
    Longitude 1.49246
  ]
  node [
    id 25
    label "Funet PoP 25"
    Latitude 38.29663
    Longitude 4.32312
  ]
  edge [
    source 0
    target 1
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 0
    target 2
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 0
    target 7
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 0
    target 24
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 0
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 1
    target 2
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 1
    target 23
  ]
  edge [
    source 2
    target 3
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 2
    target 5
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 2
    target 21
  ]
  edge [
    source 3
    target 4
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 3
    target 5
  ]
  edge [
    source 3
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 5
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 4
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 5
    target 6
  ]
  edge [
    source 5
    target 24
  ]
  edge [
    source 6
    target 7
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 6
    target 13
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 7
    target 8
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 8
    target 9
    LinkSpeed "622"
    LinkSpeedUnits "M"
    LinkSpeedRaw 622000000.0
  ]
  edge [
    source 9
    target 10
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 9
    target 11
  ]
  edge [
    source 9
    target 16
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 21
    LinkSpeed "10"
    LinkSpeedUnits "G"
    LinkSpeedRaw 10000000000.0
  ]
  edge [
    source 9
    target 25
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 10
    target 11
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 11
    target 12
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 12
    target 13
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 14
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 12
    target 17
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 12
    target 19
  ]
  edge [
    source 13
    target 14
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 14
    target 15
  ]
  edge [
    source 15
    target 16
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 17
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 15
    target 22
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 16
    target 17
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 17
    target 18
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 19
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 18
    target 20
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 18
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 19
    target 20
    LinkSpeed "40"
    LinkSpeedUnits "G"
    LinkSpeedRaw 40000000000.0
  ]
  edge [
    source 20
    target 21
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 21
    target 22
    LinkSpeed "155"
    LinkSpeedUnits "M"
    LinkSpeedRaw 155000000.0
  ]
  edge [
    source 21
    target 23
    LinkSpeed "2.5"
    LinkSpeedUnits "G"
    LinkSpeedRaw 2500000000.0
  ]
  edge [
    source 22
    target 23
  ]
  edge [
    source 23
    target 24
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
  edge [
    source 24
    target 25
    LinkSpeed "1"
    LinkSpeedUnits "G"
    LinkSpeedRaw 1000000000.0
  ]
]

//! [`PolicyScenario`] — named BGP policy configurations compiled onto a
//! topology's per-router setups.
//!
//! A scenario is a *sweep axis value*: cheap, `Copy`, canonically
//! printable. [`PolicyScenario::apply`] compiles it into concrete per-peer
//! [`PeerPolicy`] route-maps on a set of [`BgpNodeSetup`]s, deterministic
//! in the topology alone — the same `(topology, scenario)` pair always
//! yields the same policies, which is what keeps policy sweeps
//! byte-identical across worker counts.

use crate::fattree::BgpNodeSetup;
use horse_bgp::policy::{
    gao_rexford_policy, PeerPolicy, PeerRole, PolicyAction, RouteMap, RouteMapClause,
    RouteMapMatch, RouteMapSet,
};
use horse_net::topology::{NodeId, Topology};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A named policy configuration, applied uniformly across a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyScenario {
    /// No route-maps at all — behaviorally identical to pre-policy Horse
    /// (the empty-policy differential test pins this byte-for-byte).
    Baseline,
    /// Local-pref traffic engineering: every router with two or more
    /// peers prefers its lowest-addressed peer (import local-pref 150),
    /// the way operators pin a primary transit. Deterministic and
    /// topology-generic, and it exercises the import-policy intern path
    /// on every router.
    LocalPrefTe,
    /// Gao-Rexford customer/peer/provider roles inferred from the graph:
    /// on each peering link the endpoint with the higher `(degree,
    /// node-id)` key is the provider; equal-degree endpoints are
    /// settlement-free peers. Compiled to community-tagging route-maps by
    /// [`gao_rexford_policy`], so announcements are valley-free — routes
    /// learned from a peer or provider are not re-exported to other peers
    /// or providers.
    GaoRexford,
}

/// The scenarios the acceptance sweep runs, in canonical order.
pub const ALL_SCENARIOS: [PolicyScenario; 3] = [
    PolicyScenario::Baseline,
    PolicyScenario::LocalPrefTe,
    PolicyScenario::GaoRexford,
];

impl PolicyScenario {
    /// Short tag for run labels and plan hashes; `None` for the baseline
    /// (so baseline-only plans keep their pre-policy labels and hashes).
    pub fn tag(&self) -> Option<&'static str> {
        match self {
            PolicyScenario::Baseline => None,
            PolicyScenario::LocalPrefTe => Some("lpte"),
            PolicyScenario::GaoRexford => Some("gr"),
        }
    }

    /// Canonical name (for JSON envelopes).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyScenario::Baseline => "baseline",
            PolicyScenario::LocalPrefTe => "local-pref-te",
            PolicyScenario::GaoRexford => "gao-rexford",
        }
    }

    /// Compiles the scenario into per-peer policies on `setups`. The
    /// baseline leaves every `policies` map empty.
    pub fn apply(&self, topo: &Topology, setups: &mut BTreeMap<NodeId, BgpNodeSetup>) {
        match self {
            PolicyScenario::Baseline => {}
            PolicyScenario::LocalPrefTe => {
                for setup in setups.values_mut() {
                    if setup.config.peers.len() < 2 {
                        continue;
                    }
                    let preferred = setup
                        .config
                        .peers
                        .iter()
                        .map(|p| p.peer_addr)
                        .min()
                        .expect("≥2 peers");
                    setup.config.policies.insert(
                        preferred,
                        PeerPolicy {
                            import: Some(Arc::new(prefer_map(150))),
                            export: None,
                        },
                    );
                }
            }
            PolicyScenario::GaoRexford => {
                // Rank every router by (eBGP degree, node id); on each
                // link the higher rank is the provider. The rank order is
                // total and acyclic, so the provider hierarchy is too.
                let rank: BTreeMap<NodeId, (usize, NodeId)> = setups
                    .iter()
                    .map(|(n, s)| (*n, (s.config.peers.len(), *n)))
                    .collect();
                let neighbor_of: BTreeMap<(NodeId, Ipv4Addr), NodeId> = setups
                    .iter()
                    .flat_map(|(n, s)| {
                        s.addr_to_port.iter().filter_map(|(addr, port)| {
                            let lid = topo.link_at(*n, *port)?;
                            Some(((*n, *addr), topo.link(lid).other(*n)))
                        })
                    })
                    .collect();
                let nodes: Vec<NodeId> = setups.keys().copied().collect();
                for node in nodes {
                    let my_rank = rank[&node];
                    let peer_addrs: Vec<Ipv4Addr> = setups[&node]
                        .config
                        .peers
                        .iter()
                        .map(|p| p.peer_addr)
                        .collect();
                    for addr in peer_addrs {
                        let Some(&neighbor) = neighbor_of.get(&(node, addr)) else {
                            continue; // peer not on a topology link
                        };
                        let Some(&their_rank) = rank.get(&neighbor) else {
                            continue;
                        };
                        let role = match their_rank.cmp(&my_rank) {
                            std::cmp::Ordering::Less => PeerRole::Customer,
                            std::cmp::Ordering::Greater => PeerRole::Provider,
                            std::cmp::Ordering::Equal => PeerRole::Peer,
                        };
                        setups
                            .get_mut(&node)
                            .expect("node present")
                            .config
                            .policies
                            .insert(addr, gao_rexford_policy(role));
                    }
                }
            }
        }
    }
}

/// A permit-all import map that only raises LOCAL_PREF.
fn prefer_map(local_pref: u32) -> RouteMap {
    RouteMap::new(vec![RouteMapClause {
        action: PolicyAction::Permit,
        matches: RouteMapMatch::default(),
        set: RouteMapSet {
            local_pref: Some(local_pref),
            ..RouteMapSet::default()
        },
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{bgp_setups_for, stub_originations};
    use horse_bgp::session::TimerConfig;
    use horse_sim::SimDuration;

    fn timers() -> TimerConfig {
        TimerConfig {
            hold_time: SimDuration::ZERO,
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn baseline_adds_no_policies() {
        let (topo, ..) = crate::shapes::pop_wan(4, 1, 1e9);
        let mut setups = bgp_setups_for(&topo, timers());
        PolicyScenario::Baseline.apply(&topo, &mut setups);
        assert!(setups.values().all(|s| s.config.policies.is_empty()));
    }

    #[test]
    fn local_pref_te_pins_one_peer_per_multihomed_router() {
        let (topo, cores, leaves) = crate::shapes::pop_wan(4, 1, 1e9);
        let mut setups = bgp_setups_for(&topo, timers());
        PolicyScenario::LocalPrefTe.apply(&topo, &mut setups);
        for c in &cores {
            let s = &setups[c];
            assert_eq!(s.config.policies.len(), 1);
            let (addr, policy) = s.config.policies.iter().next().unwrap();
            assert_eq!(
                *addr,
                s.config.peers.iter().map(|p| p.peer_addr).min().unwrap()
            );
            assert!(policy.import.is_some() && policy.export.is_none());
        }
        // Single-homed leaves have nothing to prefer.
        for l in &leaves {
            assert!(setups[l].config.policies.is_empty());
        }
    }

    #[test]
    fn gao_rexford_roles_are_antisymmetric() {
        let (topo, ..) = crate::shapes::pop_wan(5, 2, 1e9);
        let mut setups = bgp_setups_for(&topo, timers());
        PolicyScenario::GaoRexford.apply(&topo, &mut setups);
        // Every router got a policy for every peer.
        for s in setups.values() {
            assert_eq!(s.config.policies.len(), s.config.peers.len());
        }
        // Leaves (degree 1) peer with cores (degree ≥ 3): the leaf sees a
        // Provider policy, the core a Customer policy. Rather than poking
        // at route-map internals, compare against the compiler's output.
        let provider = gao_rexford_policy(PeerRole::Provider);
        let customer = gao_rexford_policy(PeerRole::Customer);
        let leaf = setups
            .iter()
            .find(|(_, s)| s.config.peers.len() == 1)
            .map(|(n, _)| *n)
            .expect("pop_wan has single-homed leaves");
        let leaf_policy = setups[&leaf].config.policies.values().next().unwrap();
        assert_eq!(leaf_policy, &provider);
        // The core on the other side treats the leaf as a customer.
        let leaf_peer = setups[&leaf].config.peers[0];
        let port = setups[&leaf].addr_to_port[&leaf_peer.peer_addr];
        let lid = topo.link_at(leaf, port).unwrap();
        let core = topo.link(lid).other(leaf);
        assert_eq!(
            setups[&core].config.policies.get(&leaf_peer.local_addr),
            Some(&customer)
        );
    }

    #[test]
    fn scenarios_are_deterministic() {
        let (topo, _) = crate::zoo::ZooCorpus::vendored().build("Abilene").unwrap();
        for sc in ALL_SCENARIOS {
            let nets = stub_originations(&topo, 1);
            let mut a = crate::synth::bgp_setups_with_networks(&topo, timers(), &nets);
            let mut b = crate::synth::bgp_setups_with_networks(&topo, timers(), &nets);
            sc.apply(&topo, &mut a);
            sc.apply(&topo, &mut b);
            for (n, sa) in &a {
                assert_eq!(sa.config.policies, b[n].config.policies, "{sc:?}");
            }
        }
    }
}

//! Generic BGP configuration synthesis for arbitrary router topologies.
//!
//! [`crate::FatTree::bgp_setups`] hand-tailors the data-center case; this
//! module generalizes the same recipe to any topology whose forwarding
//! nodes are routers (e.g. the Waxman WANs from [`crate::shapes`]):
//! a distinct private ASN per router, eBGP on every router–router link over
//! deterministic /30-style addresses, /32 adjacencies for attached hosts,
//! and each router originating the subnets of its attached hosts.

use crate::fattree::BgpNodeSetup;
use horse_bgp::session::{PeerConfig, TimerConfig};
use horse_bgp::speaker::BgpConfig;
use horse_net::addr::Ipv4Prefix;
use horse_net::topology::{LinkId, NodeId, NodeKind, Topology};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Deterministic point-to-point addresses for a link (172.20/14 pool, so
/// they collide with neither data addresses nor the fat-tree's 172.16 pool).
fn p2p_addrs(lid: LinkId) -> (Ipv4Addr, Ipv4Addr) {
    let base: u32 = u32::from(Ipv4Addr::new(172, 20, 0, 0)) + 4 * lid.0;
    (Ipv4Addr::from(base + 1), Ipv4Addr::from(base + 2))
}

/// Synthesizes per-router BGP setups for every [`NodeKind::Router`] in
/// `topo`. ASNs are `64512 + router-index` (in node-id order); multipath
/// is enabled.
pub fn bgp_setups_for(topo: &Topology, timers: TimerConfig) -> BTreeMap<NodeId, BgpNodeSetup> {
    bgp_setups_with_networks(topo, timers, &BTreeMap::new())
}

/// [`bgp_setups_for`] plus caller-chosen originations: each router also
/// announces the prefixes listed for it in `networks_of` (on top of any
/// attached-host subnets). Hostless topologies like
/// [`crate::shapes::pop_wan`] use this to originate synthetic tables.
pub fn bgp_setups_with_networks(
    topo: &Topology,
    timers: TimerConfig,
    networks_of: &BTreeMap<NodeId, Vec<Ipv4Prefix>>,
) -> BTreeMap<NodeId, BgpNodeSetup> {
    let routers = topo.nodes_of_kind(NodeKind::Router);
    assert!(routers.len() <= 1023, "private 16-bit ASN pool exhausted");
    let asn_of: BTreeMap<NodeId, u16> = routers
        .iter()
        .enumerate()
        .map(|(i, n)| (*n, 64512 + i as u16))
        .collect();
    let mut out = BTreeMap::new();
    for (&node, &asn) in &asn_of {
        let mut peers = Vec::new();
        let mut addr_to_port = BTreeMap::new();
        let mut connected = Vec::new();
        let mut networks: Vec<Ipv4Prefix> = Vec::new();
        for (lid, port, neighbor) in topo.neighbors(node) {
            if let Some(&peer_as) = asn_of.get(&neighbor) {
                let link = topo.link(lid);
                let (a, b) = p2p_addrs(lid);
                let (local_addr, peer_addr) = if link.a.node == node { (a, b) } else { (b, a) };
                peers.push(PeerConfig {
                    peer_addr,
                    local_addr,
                    remote_as: peer_as,
                });
                addr_to_port.insert(peer_addr, port);
            } else if topo.node(neighbor).kind == NodeKind::Host {
                let h = topo.node(neighbor);
                connected.push((Ipv4Prefix::host(h.ip), port));
                networks.push(h.subnet);
            }
        }
        if let Some(extra) = networks_of.get(&node) {
            networks.extend(extra.iter().copied());
        }
        networks.sort();
        networks.dedup();
        out.insert(
            node,
            BgpNodeSetup {
                config: BgpConfig {
                    asn,
                    router_id: topo.node(node).ip,
                    timers,
                    peers,
                    networks,
                    multipath: true,
                    policies: Default::default(),
                },
                addr_to_port,
                connected,
            },
        );
    }
    out
}

/// Timers for router-only WAN convergence runs: hold disabled (no
/// keepalive traffic clouding convergence counters), 1 s connect retry,
/// and the classic 100 ms MRAI that WAN BGP batches announcements under.
/// The `table_scale` bench and every zoo/pop-wan experiment share this.
pub fn wan_timers() -> TimerConfig {
    TimerConfig {
        hold_time: horse_sim::SimDuration::ZERO,
        connect_retry: horse_sim::SimDuration::from_secs(1),
        mrai: horse_sim::SimDuration::from_millis(100),
    }
}

/// The `g`-th synthetic /24 (`32.0.0.0/8`-ish pool: `0x2000_0000 | g<<8`),
/// colliding with neither data addresses (10/8) nor p2p pools (172/12).
/// The same scheme the `table_scale` bench uses for its synthetic tables.
pub fn synth_prefix(g: u32) -> Ipv4Prefix {
    assert!(g < (1 << 16), "synthetic /24 pool exhausted");
    Ipv4Prefix::new(Ipv4Addr::from(0x2000_0000 | (g << 8)), 24)
}

/// Spread `prefixes` synthetic /24s round-robin over `routers` (in the
/// given order): prefix `g` goes to router `g % routers.len()`. Feed the
/// result to [`bgp_setups_with_networks`].
pub fn spread_originations(
    routers: &[NodeId],
    prefixes: usize,
) -> BTreeMap<NodeId, Vec<Ipv4Prefix>> {
    let mut out: BTreeMap<NodeId, Vec<Ipv4Prefix>> = BTreeMap::new();
    if routers.is_empty() {
        return out;
    }
    for g in 0..prefixes {
        out.entry(routers[g % routers.len()])
            .or_default()
            .push(synth_prefix(g as u32));
    }
    out
}

/// Stub-only originations: every **minimum-degree** router originates
/// `per_node` synthetic /24s; transit routers originate nothing. This is
/// the zoo-scenario shape — edge sites announce, cores carry — and the
/// reason [`bgp_setups_with_networks`] takes per-node originations rather
/// than a uniform block. Deterministic: routers are visited in node-id
/// order and prefixes assigned from a running counter.
pub fn stub_originations(topo: &Topology, per_node: usize) -> BTreeMap<NodeId, Vec<Ipv4Prefix>> {
    let routers = topo.nodes_of_kind(NodeKind::Router);
    let min_deg = routers
        .iter()
        .map(|r| topo.neighbors(*r).len())
        .min()
        .unwrap_or(0);
    let mut out = BTreeMap::new();
    let mut g = 0u32;
    for r in routers {
        if topo.neighbors(r).len() == min_deg {
            let mut nets = Vec::with_capacity(per_node);
            for _ in 0..per_node {
                nets.push(synth_prefix(g));
                g += 1;
            }
            out.insert(r, nets);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::waxman_wan;
    use horse_sim::SimDuration;

    fn timers() -> TimerConfig {
        TimerConfig {
            hold_time: SimDuration::from_secs(30),
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::ZERO,
        }
    }

    #[test]
    fn wan_setups_cover_all_routers() {
        let (topo, _hosts, routers) = waxman_wan(20, 0.4, 0.2, 1e9, 3);
        let setups = bgp_setups_for(&topo, timers());
        assert_eq!(setups.len(), routers.len());
        // Unique ASNs.
        let mut asns: Vec<u16> = setups.values().map(|s| s.config.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), 20);
        // Every router originates its host's subnet and has a /32 adjacency.
        for s in setups.values() {
            assert_eq!(s.config.networks.len(), 1);
            assert_eq!(s.connected.len(), 1);
            assert_eq!(s.connected[0].0.len(), 32);
        }
    }

    #[test]
    fn peerings_symmetric() {
        let (topo, _, _) = waxman_wan(15, 0.5, 0.3, 1e9, 9);
        let setups = bgp_setups_for(&topo, timers());
        for (node, setup) in &setups {
            for peer in &setup.config.peers {
                let port = setup.addr_to_port[&peer.peer_addr];
                let lid = topo.link_at(*node, port).unwrap();
                let other = topo.link(lid).other(*node);
                let os = &setups[&other];
                assert!(os.config.peers.iter().any(|p| {
                    p.peer_addr == peer.local_addr
                        && p.local_addr == peer.peer_addr
                        && p.remote_as == setup.config.asn
                }));
            }
        }
    }

    #[test]
    fn with_networks_originates_synthetic_prefixes() {
        let (topo, cores, leaves) = crate::shapes::pop_wan(4, 2, 1e9);
        let mut networks_of: BTreeMap<NodeId, Vec<Ipv4Prefix>> = BTreeMap::new();
        for (i, leaf) in leaves.iter().enumerate() {
            networks_of.insert(
                *leaf,
                vec![Ipv4Prefix::new(
                    Ipv4Addr::from(0x2000_0000 | (i as u32) << 8),
                    24,
                )],
            );
        }
        let setups = bgp_setups_with_networks(&topo, timers(), &networks_of);
        assert_eq!(setups.len(), 12);
        for core in &cores {
            assert!(setups[core].config.networks.is_empty());
        }
        for leaf in &leaves {
            assert_eq!(setups[leaf].config.networks, networks_of[leaf]);
            assert!(setups[leaf].connected.is_empty(), "no hosts attached");
        }
        // Hostless routers still peer over every router-router link.
        assert_eq!(
            setups[&cores[0]].config.peers.len(),
            topo.neighbors(cores[0]).len()
        );
    }

    #[test]
    fn stub_originations_hit_min_degree_routers_only() {
        // pop_wan: leaves have degree 1, cores ≥ 3 — only leaves originate.
        let (topo, cores, leaves) = crate::shapes::pop_wan(4, 2, 1e9);
        let nets = stub_originations(&topo, 2);
        assert_eq!(nets.len(), leaves.len());
        for c in &cores {
            assert!(!nets.contains_key(c), "transit core must not originate");
        }
        let mut all: Vec<Ipv4Prefix> = nets.values().flatten().copied().collect();
        assert_eq!(all.len(), 2 * leaves.len());
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 2 * leaves.len(), "prefixes must be unique");
        // Determinism: same topology, same assignment.
        assert_eq!(nets, stub_originations(&topo, 2));
        // And the setups builder accepts the parameterized map: only the
        // stub routers end up with networks.
        let setups = bgp_setups_with_networks(&topo, timers(), &nets);
        for (node, s) in &setups {
            assert_eq!(
                s.config.networks.len(),
                if nets.contains_key(node) { 2 } else { 0 }
            );
        }
    }

    #[test]
    fn spread_originations_round_robin() {
        let routers: Vec<NodeId> = (0u32..3).map(NodeId).collect();
        let nets = spread_originations(&routers, 7);
        assert_eq!(nets[&routers[0]].len(), 3);
        assert_eq!(nets[&routers[1]].len(), 2);
        assert_eq!(nets[&routers[2]].len(), 2);
        assert_eq!(nets[&routers[0]][0], synth_prefix(0));
        assert_eq!(nets[&routers[1]][0], synth_prefix(1));
        assert!(spread_originations(&[], 5).is_empty());
    }

    #[test]
    fn addresses_unique() {
        let (topo, _, _) = waxman_wan(25, 0.4, 0.2, 1e9, 5);
        let setups = bgp_setups_for(&topo, timers());
        let mut seen = std::collections::HashSet::new();
        for s in setups.values() {
            for p in &s.config.peers {
                assert!(seen.insert((p.local_addr, p.peer_addr)));
            }
        }
    }
}

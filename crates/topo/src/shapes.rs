//! Simple topology shapes: linear, star, leaf–spine, random WAN.
//!
//! The paper notes Horse "is not restricted to DCs and can also be used for
//! other types of networks, e.g. Wide Area Networks" — [`waxman_wan`]
//! provides that: a Waxman random graph of routers, each with one attached
//! host subnet, suitable for BGP experiments.

use horse_net::addr::Ipv4Prefix;
use horse_net::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// `h0 - s0 - s1 - … - s(n-1) - h1`: a chain of `n` switches with a host at
/// each end. Returns `(topo, h0, h1, switches)`.
pub fn linear(n: usize, link_bps: f64) -> (Topology, NodeId, NodeId, Vec<NodeId>) {
    assert!(n >= 1);
    let mut t = Topology::new();
    let sn: Ipv4Prefix = "10.0.0.0/24".parse().expect("static prefix");
    let h0 = t.add_host("h0", Ipv4Addr::new(10, 0, 0, 1), sn);
    let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 2), sn);
    let switches: Vec<NodeId> = (0..n)
        .map(|i| t.add_switch(format!("s{i}"), Ipv4Addr::new(10, 255, 0, i as u8 + 1)))
        .collect();
    t.add_link(h0, switches[0], link_bps, 1000);
    for w in switches.windows(2) {
        t.add_link(w[0], w[1], link_bps, 1000);
    }
    t.add_link(switches[n - 1], h1, link_bps, 1000);
    (t, h0, h1, switches)
}

/// `n` hosts hanging off one switch. Returns `(topo, hosts, switch)`.
pub fn star(n: usize, link_bps: f64) -> (Topology, Vec<NodeId>, NodeId) {
    assert!((1..=250).contains(&n));
    let mut t = Topology::new();
    let sn: Ipv4Prefix = "10.0.0.0/24".parse().expect("static prefix");
    let s = t.add_switch("s0", Ipv4Addr::new(10, 255, 0, 1));
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| {
            let h = t.add_host(format!("h{i}"), Ipv4Addr::new(10, 0, 0, i as u8 + 1), sn);
            t.add_link(h, s, link_bps, 1000);
            h
        })
        .collect();
    (t, hosts, s)
}

/// A two-tier leaf–spine fabric: every leaf connects to every spine, with
/// `hosts_per_leaf` hosts per leaf. Returns `(topo, hosts, leaves, spines)`.
pub fn leaf_spine(
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    link_bps: f64,
) -> (Topology, Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
    assert!(leaves >= 1 && spines >= 1 && hosts_per_leaf >= 1);
    let mut t = Topology::new();
    let spine_ids: Vec<NodeId> = (0..spines)
        .map(|i| t.add_switch(format!("spine{i}"), Ipv4Addr::new(10, 255, 1, i as u8 + 1)))
        .collect();
    let mut hosts = Vec::new();
    let leaf_ids: Vec<NodeId> = (0..leaves)
        .map(|l| {
            let leaf = t.add_switch(format!("leaf{l}"), Ipv4Addr::new(10, 255, 0, l as u8 + 1));
            let sn = Ipv4Prefix::new(Ipv4Addr::new(10, 0, l as u8, 0), 24);
            for h in 0..hosts_per_leaf {
                let host = t.add_host(
                    format!("l{l}-h{h}"),
                    Ipv4Addr::new(10, 0, l as u8, h as u8 + 1),
                    sn,
                );
                t.add_link(host, leaf, link_bps, 1000);
                hosts.push(host);
            }
            for s in &spine_ids {
                t.add_link(leaf, *s, link_bps, 1000);
            }
            leaf
        })
        .collect();
    (t, hosts, leaf_ids, spine_ids)
}

/// A Waxman random WAN of `n` routers on a unit square: routers `u`,`v`
/// connect with probability `alpha * exp(-d(u,v) / (beta * L))`. Each
/// router gets one host subnet. A spanning chain guarantees connectivity.
/// Returns `(topo, hosts, routers)`.
pub fn waxman_wan(
    n: usize,
    alpha: f64,
    beta: f64,
    link_bps: f64,
    seed: u64,
) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    assert!((2..=200).contains(&n));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Topology::new();
    let positions: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let routers: Vec<NodeId> = (0..n)
        .map(|i| {
            t.add_router(
                format!("r{i}"),
                Ipv4Addr::new(10, 200 + (i / 250) as u8, (i % 250) as u8, 1),
            )
        })
        .collect();
    let hosts: Vec<NodeId> = (0..n)
        .map(|i| {
            let sn = Ipv4Prefix::new(Ipv4Addr::new(10, (i / 250) as u8, (i % 250) as u8, 0), 24);
            let h = t.add_host(
                format!("r{i}-host"),
                Ipv4Addr::new(10, (i / 250) as u8, (i % 250) as u8, 2),
                sn,
            );
            t.add_link(h, routers[i], link_bps, 1000);
            h
        })
        .collect();
    // Spanning chain for connectivity.
    for i in 1..n {
        t.add_link(
            routers[i - 1],
            routers[i],
            link_bps,
            wan_delay(&positions, i - 1, i),
        );
    }
    // Waxman extra links.
    let l = 2f64.sqrt(); // max distance on the unit square
    for i in 0..n {
        for j in i + 2..n {
            let d = dist(positions[i], positions[j]);
            let p = alpha * (-d / (beta * l)).exp();
            if rng.gen::<f64>() < p {
                t.add_link(
                    routers[i],
                    routers[j],
                    link_bps,
                    wan_delay(&positions, i, j),
                );
            }
        }
    }
    (t, hosts, routers)
}

/// A deterministic PoP-style WAN sized for table-scale experiments: `pops`
/// core routers on a ring with power-of-two chord shortcuts (diameter
/// O(log pops), like a Chord overlay), each core fronting `leaves_per_pop`
/// single-homed leaf routers. Unlike [`waxman_wan`] there is no RNG and no
/// hosts — leaves are the origination points, and callers attach synthetic
/// prefixes via [`crate::synth::bgp_setups_with_networks`]. Total nodes:
/// `pops * (1 + leaves_per_pop)`. Returns `(topo, cores, leaves)`.
pub fn pop_wan(
    pops: usize,
    leaves_per_pop: usize,
    link_bps: f64,
) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    assert!((3..=250).contains(&pops));
    assert!(pops * (1 + leaves_per_pop) <= 13_750, "router ip space");
    let ip = |i: usize| Ipv4Addr::new(10, 200 + (i / 250) as u8, (i % 250) as u8, 1);
    let mut t = Topology::new();
    let cores: Vec<NodeId> = (0..pops)
        .map(|p| t.add_router(format!("pop{p}"), ip(p)))
        .collect();
    let mut leaves = Vec::new();
    for (p, &core) in cores.iter().enumerate() {
        for l in 0..leaves_per_pop {
            let idx = pops + p * leaves_per_pop + l;
            let r = t.add_router(format!("pop{p}-leaf{l}"), ip(idx));
            // Leaf uplink: metro distance, 1 ms.
            t.add_link(r, core, link_bps, 1_000_000);
            leaves.push(r);
        }
    }
    // Core ring (5 ms long-haul), then chord shortcuts at power-of-two
    // strides for a logarithmic diameter.
    for p in 0..pops {
        t.add_link(cores[p], cores[(p + 1) % pops], link_bps, 5_000_000);
    }
    let mut stride = 2;
    while stride <= pops / 2 {
        for p in 0..pops {
            let q = (p + stride) % pops;
            // At stride == pops/2 the chord p→q repeats as q→p.
            if t.link_between(cores[p], cores[q]).is_none() {
                t.add_link(cores[p], cores[q], link_bps, 5_000_000);
            }
        }
        stride *= 2;
    }
    (t, cores, leaves)
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Distance-proportional delay: unit square diagonal ≈ 20 ms coast-to-coast.
fn wan_delay(pos: &[(f64, f64)], i: usize, j: usize) -> u64 {
    let d = dist(pos[i], pos[j]);
    (d / 2f64.sqrt() * 20e6) as u64 + 100_000 // ≥ 0.1 ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_net::topology::NodeKind;

    #[test]
    fn linear_connects_ends() {
        let (t, h0, h1, switches) = linear(5, 1e9);
        assert_eq!(switches.len(), 5);
        assert_eq!(t.hop_distance(h0, h1), Some(6));
    }

    #[test]
    fn star_counts() {
        let (t, hosts, s) = star(10, 1e9);
        assert_eq!(hosts.len(), 10);
        assert_eq!(t.neighbors(s).len(), 10);
        assert_eq!(t.hop_distance(hosts[0], hosts[9]), Some(2));
    }

    #[test]
    fn leaf_spine_full_bipartite() {
        let (t, hosts, leaves, spines) = leaf_spine(4, 3, 2, 1e9);
        assert_eq!(hosts.len(), 8);
        for l in &leaves {
            for s in &spines {
                assert!(t.link_between(*l, *s).is_some());
            }
        }
        // Cross-leaf hosts have one ECMP path per spine.
        let paths = t.all_shortest_paths(hosts[0], hosts[2]);
        assert_eq!(paths.len(), 3);
    }

    #[test]
    fn waxman_is_connected_and_deterministic() {
        let (t1, hosts, routers) = waxman_wan(30, 0.4, 0.2, 1e9, 7);
        assert_eq!(hosts.len(), 30);
        assert_eq!(routers.len(), 30);
        for h in &hosts[1..] {
            assert!(t1.hop_distance(hosts[0], *h).is_some());
        }
        let (t2, ..) = waxman_wan(30, 0.4, 0.2, 1e9, 7);
        assert_eq!(t1.link_count(), t2.link_count(), "same seed, same graph");
        let (t3, ..) = waxman_wan(30, 0.4, 0.2, 1e9, 8);
        // Different seeds almost surely differ in link count.
        assert!(
            t1.link_count() != t3.link_count() || t1.node_count() == t3.node_count(),
            "sanity"
        );
        assert_eq!(t1.nodes_of_kind(NodeKind::Router).len(), 30);
    }

    #[test]
    fn pop_wan_shape_and_diameter() {
        let (t, cores, leaves) = pop_wan(8, 3, 1e9);
        assert_eq!(cores.len(), 8);
        assert_eq!(leaves.len(), 24);
        assert_eq!(t.node_count(), 32);
        assert_eq!(t.nodes_of_kind(NodeKind::Router).len(), 32);
        // Ring (8) + strides 2 and 4 (8 + 4 after dedup) + leaf uplinks.
        assert_eq!(t.link_count(), 8 + 8 + 4 + 24);
        // Any leaf reaches any other leaf within leaf + log-ish core hops.
        for l in &leaves {
            let d = t.hop_distance(leaves[0], *l).expect("connected");
            assert!(d <= 5, "diameter too large: {d}");
        }
        // Deterministic: no RNG, same call gives the same graph.
        let (t2, ..) = pop_wan(8, 3, 1e9);
        assert_eq!(t.link_count(), t2.link_count());
    }

    #[test]
    fn wan_delays_scale_with_distance() {
        let pos = vec![(0.0, 0.0), (1.0, 1.0), (0.0, 0.01)];
        assert!(wan_delay(&pos, 0, 1) > wan_delay(&pos, 0, 2));
        assert!(wan_delay(&pos, 0, 2) >= 100_000);
    }
}

//! The Al-Fares k-ary fat-tree (SIGCOMM'08), the demo's topology.
//!
//! For `k` pods (k even): each pod has k/2 edge (ToR) and k/2 aggregation
//! switches, there are (k/2)² core switches, and every edge switch serves
//! k/2 hosts — k³/4 hosts in total. Addressing follows the paper:
//! pod switches are `10.pod.switch.1`, core switches `10.k.j.i`, and hosts
//! `10.pod.edge.2+n` inside the edge's `10.pod.edge.0/24` subnet.
//!
//! The demo runs this topology in two flavors: all switches as OpenFlow
//! datapaths (SDN ECMP / Hedera) or all switches as BGP routers
//! ([`SwitchRole::BgpRouter`]), for which [`FatTree::bgp_setups`] emits
//! per-router speaker configurations.

use horse_bgp::session::{PeerConfig, TimerConfig};
use horse_bgp::speaker::BgpConfig;
use horse_net::addr::Ipv4Prefix;
use horse_net::topology::{LinkId, NodeId, PortId, Topology};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// How the fat-tree's switching elements participate in the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchRole {
    /// Every switch is an OpenFlow datapath managed by an SDN controller.
    OpenFlow,
    /// Every switch is an IP router running an emulated BGP daemon.
    BgpRouter,
}

/// Everything a BGP router in the fat-tree needs: its speaker config and
/// the mapping from neighbor link addresses to local output ports (used by
/// the Connection Manager to turn RIB next hops into FIB ports).
#[derive(Debug, Clone)]
pub struct BgpNodeSetup {
    /// Speaker configuration (ASN, peers, originated networks).
    pub config: BgpConfig,
    /// Neighbor address → local port.
    pub addr_to_port: BTreeMap<Ipv4Addr, PortId>,
    /// Local subnet(s) directly attached (host-facing), with their ports.
    pub connected: Vec<(Ipv4Prefix, PortId)>,
}

/// A built fat-tree.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Pod count (the paper's 4, 6, 8).
    pub k: usize,
    /// Control-plane role the switches were built with.
    pub role: SwitchRole,
    /// The graph, behind an [`Arc`] so experiments (and parallel sweep
    /// workers) share one immutable structure instead of deep-cloning it
    /// per run. Mutating call sites clone out of the `Arc` explicitly.
    pub topo: Arc<Topology>,
    /// All hosts, in (pod, edge, index) order.
    pub hosts: Vec<NodeId>,
    /// Edge (ToR) switches, in (pod, index) order.
    pub edges: Vec<NodeId>,
    /// Aggregation switches, in (pod, index) order.
    pub aggs: Vec<NodeId>,
    /// Core switches, row-major over the (k/2)×(k/2) grid.
    pub cores: Vec<NodeId>,
    /// Each edge switch's host subnet.
    pub host_subnets: BTreeMap<NodeId, Ipv4Prefix>,
    /// Link-local /30-style addresses per inter-switch link: (a-side, b-side).
    pub link_addrs: BTreeMap<LinkId, (Ipv4Addr, Ipv4Addr)>,
}

impl FatTree {
    /// Builds a k-ary fat-tree. `k` must be even and ≥ 2. All links get
    /// `link_bps` capacity (the demo uses 1 Gbps) and `delay_ns` latency.
    pub fn build(k: usize, role: SwitchRole, link_bps: f64, delay_ns: u64) -> FatTree {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree needs even k >= 2, got {k}"
        );
        let half = k / 2;
        let mut topo = Topology::new();
        let mut hosts = Vec::new();
        let mut edges = Vec::new();
        let mut aggs = Vec::new();
        let mut cores = Vec::new();
        let mut host_subnets = BTreeMap::new();
        let mut link_addrs = BTreeMap::new();

        let add_switch = |topo: &mut Topology, name: String, ip: Ipv4Addr| match role {
            SwitchRole::OpenFlow => topo.add_switch(name, ip),
            SwitchRole::BgpRouter => topo.add_router(name, ip),
        };

        // Core switches: 10.k.j.i for j,i in 1..=k/2.
        for j in 1..=half {
            for i in 1..=half {
                let ip = Ipv4Addr::new(10, k as u8, j as u8, i as u8);
                cores.push(add_switch(&mut topo, format!("core-{j}-{i}"), ip));
            }
        }
        // Pods.
        for pod in 0..k {
            // Edge switches 10.pod.s.1 (s = 0..half), agg 10.pod.s.1
            // (s = half..k).
            for s in 0..half {
                let ip = Ipv4Addr::new(10, pod as u8, s as u8, 1);
                edges.push(add_switch(&mut topo, format!("p{pod}-edge{s}"), ip));
            }
            for s in half..k {
                let ip = Ipv4Addr::new(10, pod as u8, s as u8, 1);
                aggs.push(add_switch(&mut topo, format!("p{pod}-agg{}", s - half), ip));
            }
            // Hosts under each edge switch: 10.pod.edge.(2+n).
            for e in 0..half {
                let edge = edges[pod * half + e];
                let subnet = Ipv4Prefix::new(Ipv4Addr::new(10, pod as u8, e as u8, 0), 24);
                host_subnets.insert(edge, subnet);
                for n in 0..half {
                    let ip = Ipv4Addr::new(10, pod as u8, e as u8, 2 + n as u8);
                    let h = topo.add_host(format!("p{pod}-e{e}-h{n}"), ip, subnet);
                    hosts.push(h);
                    topo.add_link(h, edge, link_bps, delay_ns);
                }
            }
            // Edge ↔ agg full bipartite within the pod.
            for e in 0..half {
                for a in 0..half {
                    let edge = edges[pod * half + e];
                    let agg = aggs[pod * half + a];
                    let (lid, ..) = topo.add_link(edge, agg, link_bps, delay_ns);
                    link_addrs.insert(lid, Self::p2p_addrs(lid));
                }
            }
            // Agg ↔ core: agg `a` connects to cores in row `a`.
            for a in 0..half {
                let agg = aggs[pod * half + a];
                for i in 0..half {
                    let core = cores[a * half + i];
                    let (lid, ..) = topo.add_link(agg, core, link_bps, delay_ns);
                    link_addrs.insert(lid, Self::p2p_addrs(lid));
                }
            }
        }
        FatTree {
            k,
            role,
            topo: Arc::new(topo),
            hosts,
            edges,
            aggs,
            cores,
            host_subnets,
            link_addrs,
        }
    }

    /// Deterministic /30-style point-to-point addresses for an
    /// inter-switch link, out of 172.16/12 so they never collide with the
    /// 10/8 data addresses.
    fn p2p_addrs(lid: LinkId) -> (Ipv4Addr, Ipv4Addr) {
        let base: u32 = u32::from(Ipv4Addr::new(172, 16, 0, 0)) + 4 * lid.0;
        (Ipv4Addr::from(base + 1), Ipv4Addr::from(base + 2))
    }

    /// The address a node uses on an inter-switch link (panics if the node
    /// is not an endpoint — a builder bug).
    pub fn link_addr_of(&self, lid: LinkId, node: NodeId) -> Ipv4Addr {
        let link = self.topo.link(lid);
        let (a, b) = self.link_addrs[&lid];
        if link.a.node == node {
            a
        } else {
            assert_eq!(link.b.node, node, "node not on link");
            b
        }
    }

    /// Number of pods `k` → expected host count k³/4.
    pub fn expected_hosts(k: usize) -> usize {
        k * k * k / 4
    }

    /// Synthesizes per-router BGP configurations (only meaningful when the
    /// tree was built with [`SwitchRole::BgpRouter`]).
    ///
    /// AS numbering: private range, `64512 + switch_index` where switches
    /// are numbered edges, aggs, cores in construction order — every switch
    /// gets a distinct AS so all equal-hop paths have equal AS-path length
    /// and ECMP multipath applies.
    pub fn bgp_setups(&self, timers: TimerConfig) -> BTreeMap<NodeId, BgpNodeSetup> {
        let mut asn_of: BTreeMap<NodeId, u16> = BTreeMap::new();
        for (i, n) in self
            .edges
            .iter()
            .chain(self.aggs.iter())
            .chain(self.cores.iter())
            .enumerate()
        {
            asn_of.insert(*n, 64512 + i as u16);
        }
        let mut out = BTreeMap::new();
        for (&node, &asn) in &asn_of {
            let mut peers = Vec::new();
            let mut addr_to_port = BTreeMap::new();
            let mut connected = Vec::new();
            for (lid, port, neighbor) in self.topo.neighbors(node) {
                if let Some(&peer_as) = asn_of.get(&neighbor) {
                    let local_addr = self.link_addr_of(lid, node);
                    let peer_addr = self.link_addr_of(lid, neighbor);
                    peers.push(PeerConfig {
                        peer_addr,
                        local_addr,
                        remote_as: peer_as,
                    });
                    addr_to_port.insert(peer_addr, port);
                } else {
                    // Host-facing port: install a /32 adjacency for the
                    // attached host (the kernel's directly-connected
                    // neighbor entry), so each host under the edge switch
                    // is reached through its own port.
                    let host_ip = self.topo.node(neighbor).ip;
                    connected.push((Ipv4Prefix::host(host_ip), port));
                }
            }
            connected.sort();
            connected.dedup();
            let networks = self
                .host_subnets
                .get(&node)
                .map(|s| vec![*s])
                .unwrap_or_default();
            out.insert(
                node,
                BgpNodeSetup {
                    config: BgpConfig {
                        asn,
                        router_id: self.topo.node(node).ip,
                        timers,
                        peers,
                        networks,
                        multipath: true,
                        policies: Default::default(),
                    },
                    addr_to_port,
                    connected,
                },
            );
        }
        out
    }

    /// Datapath id of a switch (for OpenFlow scenarios): its node id.
    pub fn dpid(&self, node: NodeId) -> u64 {
        u64::from(node.0)
    }

    /// All switch nodes (edge + agg + core).
    pub fn switches(&self) -> Vec<NodeId> {
        self.edges
            .iter()
            .chain(self.aggs.iter())
            .chain(self.cores.iter())
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_net::topology::NodeKind;
    use horse_sim::SimDuration;

    fn tree(k: usize) -> FatTree {
        FatTree::build(k, SwitchRole::OpenFlow, 1e9, 1000)
    }

    #[test]
    fn element_counts_match_theory() {
        for k in [2usize, 4, 6, 8] {
            let ft = tree(k);
            let half = k / 2;
            assert_eq!(ft.hosts.len(), k * k * k / 4, "hosts for k={k}");
            assert_eq!(ft.edges.len(), k * half, "edges for k={k}");
            assert_eq!(ft.aggs.len(), k * half, "aggs for k={k}");
            assert_eq!(ft.cores.len(), half * half, "cores for k={k}");
            // Links: host-edge (k^3/4) + edge-agg (k * (k/2)^2) + agg-core
            // (k * (k/2)^2).
            let expect_links = k * k * k / 4 + 2 * k * half * half;
            assert_eq!(ft.topo.link_count(), expect_links, "links for k={k}");
        }
    }

    #[test]
    fn k4_has_16_hosts() {
        assert_eq!(FatTree::expected_hosts(4), 16);
        assert_eq!(tree(4).hosts.len(), 16);
    }

    #[test]
    fn host_addressing_follows_paper() {
        let ft = tree(4);
        let h = ft.topo.find("p2-e1-h0").unwrap();
        assert_eq!(ft.topo.node(h).ip, Ipv4Addr::new(10, 2, 1, 2));
        let edge = ft.topo.find("p2-edge1").unwrap();
        assert_eq!(
            ft.host_subnets[&edge],
            "10.2.1.0/24".parse::<Ipv4Prefix>().unwrap()
        );
    }

    #[test]
    fn all_hosts_reach_all_hosts() {
        let ft = tree(4);
        let a = ft.hosts[0];
        for &b in &ft.hosts[1..] {
            assert!(ft.topo.hop_distance(a, b).is_some(), "{a} -> {b}");
        }
    }

    #[test]
    fn inter_pod_paths_have_ecmp() {
        let ft = tree(4);
        // Hosts in different pods: (k/2)^2 = 4 shortest paths of 6 hops.
        let a = ft.topo.find("p0-e0-h0").unwrap();
        let b = ft.topo.find("p1-e0-h0").unwrap();
        let paths = ft.topo.all_shortest_paths(a, b);
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(p.len(), 6);
        }
        // Same-pod, different edge: k/2 = 2 paths of 4 hops.
        let c = ft.topo.find("p0-e1-h0").unwrap();
        let paths = ft.topo.all_shortest_paths(a, c);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 4);
        }
        // Same edge: 1 path of 2 hops.
        let d = ft.topo.find("p0-e0-h1").unwrap();
        assert_eq!(
            ft.topo.all_shortest_paths(a, d),
            vec![vec![
                ft.topo.link_between(a, ft.edges[0]).unwrap().0,
                ft.topo.link_between(ft.edges[0], d).unwrap().0,
            ]]
        );
    }

    #[test]
    fn node_kinds_follow_role() {
        let of = FatTree::build(4, SwitchRole::OpenFlow, 1e9, 0);
        assert_eq!(of.topo.nodes_of_kind(NodeKind::Switch).len(), 20);
        assert_eq!(of.topo.nodes_of_kind(NodeKind::Router).len(), 0);
        let bgp = FatTree::build(4, SwitchRole::BgpRouter, 1e9, 0);
        assert_eq!(bgp.topo.nodes_of_kind(NodeKind::Router).len(), 20);
        assert_eq!(bgp.topo.nodes_of_kind(NodeKind::Switch).len(), 0);
    }

    #[test]
    fn bgp_setups_are_consistent() {
        let ft = FatTree::build(4, SwitchRole::BgpRouter, 1e9, 0);
        let setups = ft.bgp_setups(TimerConfig {
            hold_time: SimDuration::from_secs(9),
            connect_retry: SimDuration::from_secs(1),
            mrai: SimDuration::ZERO,
        });
        assert_eq!(setups.len(), 20);
        // Distinct ASNs.
        let mut asns: Vec<u16> = setups.values().map(|s| s.config.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), 20);
        // Every peering is symmetric: if a lists b, b lists a with swapped
        // addresses.
        for (node, setup) in &setups {
            for peer in &setup.config.peers {
                // Peer addresses are link addresses, not node IPs — resolve
                // the neighbor through the port map.
                let port = setup.addr_to_port[&peer.peer_addr];
                let lid = ft.topo.link_at(*node, port).unwrap();
                let neighbor = ft.topo.link(lid).other(*node);
                let nsetup = &setups[&neighbor];
                assert!(
                    nsetup
                        .config
                        .peers
                        .iter()
                        .any(|p| p.peer_addr == peer.local_addr
                            && p.local_addr == peer.peer_addr
                            && p.remote_as == setup.config.asn),
                    "asymmetric peering {node} <-> {neighbor}"
                );
            }
        }
        // Edge switches originate exactly their host subnet; others none.
        for e in &ft.edges {
            assert_eq!(setups[e].config.networks.len(), 1);
            assert!(!setups[e].connected.is_empty());
        }
        for c in &ft.cores {
            assert!(setups[c].config.networks.is_empty());
        }
        // Peer counts: edge = k/2 aggs; agg = k/2 edges + k/2 cores;
        // core = k pods.
        for e in &ft.edges {
            assert_eq!(setups[e].config.peers.len(), 2);
        }
        for a in &ft.aggs {
            assert_eq!(setups[a].config.peers.len(), 4);
        }
        for c in &ft.cores {
            assert_eq!(setups[c].config.peers.len(), 4);
        }
    }

    #[test]
    fn link_addrs_unique() {
        let ft = FatTree::build(6, SwitchRole::BgpRouter, 1e9, 0);
        let mut seen = std::collections::HashSet::new();
        for (a, b) in ft.link_addrs.values() {
            assert!(seen.insert(*a), "{a} duplicated");
            assert!(seen.insert(*b), "{b} duplicated");
        }
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn odd_k_rejected() {
        FatTree::build(3, SwitchRole::OpenFlow, 1e9, 0);
    }
}

//! Traffic patterns.
//!
//! The demo's workload: "each server of the DC sends a single UDP flow to
//! another server inside the DC, at the constant rate of 1 Gbps" — a random
//! permutation. Stride and staggered patterns (from the Hedera evaluation)
//! are provided for the extended benchmarks.

use horse_net::flow::FiveTuple;
use horse_net::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One src→dst demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficPair {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
}

/// Workload shapes over a host list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Random permutation with no self-pairs (the demo's pattern).
    RandomPermutation,
    /// Host `i` sends to host `(i + stride) mod n`.
    Stride(usize),
    /// With probability `p_edge`% stay under the same edge switch, with
    /// `p_pod`% stay in the pod, else go anywhere (Hedera's "staggered
    /// prob" pattern, here approximated by index locality).
    Staggered {
        /// Percent of flows staying within the same edge group.
        p_edge: u8,
        /// Percent of flows staying within the same pod (beyond `p_edge`).
        p_pod: u8,
        /// Hosts per edge group.
        hosts_per_edge: usize,
        /// Hosts per pod.
        hosts_per_pod: usize,
    },
}

impl TrafficPattern {
    /// Generates the src→dst pairs for `hosts` using a seeded RNG.
    pub fn pairs(&self, hosts: &[NodeId], seed: u64) -> Vec<TrafficPair> {
        let n = hosts.len();
        if n < 2 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            TrafficPattern::RandomPermutation => {
                // Sattolo's algorithm: a uniform cyclic permutation, which
                // guarantees no host sends to itself.
                let mut idx: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    let j = rng.gen_range(0..i);
                    idx.swap(i, j);
                }
                (0..n)
                    .map(|i| TrafficPair {
                        src: hosts[i],
                        dst: hosts[idx[i]],
                    })
                    .collect()
            }
            TrafficPattern::Stride(s) => (0..n)
                .map(|i| TrafficPair {
                    src: hosts[i],
                    dst: hosts[(i + s) % n],
                })
                .filter(|p| p.src != p.dst)
                .collect(),
            TrafficPattern::Staggered {
                p_edge,
                p_pod,
                hosts_per_edge,
                hosts_per_pod,
            } => {
                let hpe = (*hosts_per_edge).max(1);
                let hpp = (*hosts_per_pod).max(hpe);
                (0..n)
                    .map(|i| {
                        let r: u8 = rng.gen_range(0..100);
                        let dst = if r < *p_edge && hpe > 1 {
                            // Same edge group.
                            let base = i / hpe * hpe;
                            let mut d = base + rng.gen_range(0..hpe);
                            if d == i {
                                d = base + (i - base + 1) % hpe;
                            }
                            d % n
                        } else if r < p_edge + p_pod && hpp > 1 {
                            let base = i / hpp * hpp;
                            let span = hpp.min(n - base);
                            let mut d = base + rng.gen_range(0..span);
                            if d == i {
                                d = base + (i - base + 1) % span;
                            }
                            d % n
                        } else {
                            let mut d = rng.gen_range(0..n);
                            if d == i {
                                d = (i + 1) % n;
                            }
                            d
                        };
                        TrafficPair {
                            src: hosts[i],
                            dst: hosts[dst],
                        }
                    })
                    .filter(|p| p.src != p.dst)
                    .collect()
            }
        }
    }
}

/// Builds the UDP 5-tuple the demo's flow from `src` to `dst` uses:
/// distinct source ports per sender keep 5-tuple hashing meaningful.
pub fn demo_tuple(topo: &Topology, src: NodeId, dst: NodeId, flow_index: u16) -> FiveTuple {
    FiveTuple::udp(
        topo.node(src).ip,
        10_000 + flow_index,
        topo.node(dst).ip,
        20_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::{FatTree, SwitchRole};

    fn hosts(n: usize) -> Vec<NodeId> {
        (0..n as u32).map(NodeId).collect()
    }

    #[test]
    fn permutation_covers_all_and_no_self() {
        let h = hosts(64);
        let pairs = TrafficPattern::RandomPermutation.pairs(&h, 1);
        assert_eq!(pairs.len(), 64);
        let mut dsts: Vec<NodeId> = pairs.iter().map(|p| p.dst).collect();
        dsts.sort();
        dsts.dedup();
        assert_eq!(dsts.len(), 64, "permutation: every host receives once");
        for p in &pairs {
            assert_ne!(p.src, p.dst);
        }
    }

    #[test]
    fn permutation_deterministic_per_seed() {
        let h = hosts(16);
        let a = TrafficPattern::RandomPermutation.pairs(&h, 5);
        let b = TrafficPattern::RandomPermutation.pairs(&h, 5);
        let c = TrafficPattern::RandomPermutation.pairs(&h, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stride_wraps() {
        let h = hosts(8);
        let pairs = TrafficPattern::Stride(3).pairs(&h, 0);
        assert_eq!(pairs[0].dst, NodeId(3));
        assert_eq!(pairs[7].dst, NodeId(2));
    }

    #[test]
    fn stride_zero_yields_empty() {
        let h = hosts(4);
        assert!(TrafficPattern::Stride(0).pairs(&h, 0).is_empty());
    }

    #[test]
    fn staggered_respects_locality_statistically() {
        let h = hosts(64);
        let pat = TrafficPattern::Staggered {
            p_edge: 50,
            p_pod: 30,
            hosts_per_edge: 2,
            hosts_per_pod: 8,
        };
        let pairs = pat.pairs(&h, 42);
        let same_edge = pairs.iter().filter(|p| p.src.0 / 2 == p.dst.0 / 2).count();
        assert!(
            same_edge > pairs.len() / 4,
            "expected heavy edge locality, got {same_edge}/{}",
            pairs.len()
        );
        for p in &pairs {
            assert_ne!(p.src, p.dst);
        }
    }

    #[test]
    fn demo_tuple_unique_per_flow_index() {
        let ft = FatTree::build(4, SwitchRole::OpenFlow, 1e9, 0);
        let t1 = demo_tuple(&ft.topo, ft.hosts[0], ft.hosts[1], 0);
        let t2 = demo_tuple(&ft.topo, ft.hosts[0], ft.hosts[1], 1);
        assert_ne!(t1, t2);
        assert_eq!(t1.src_ip, ft.topo.node(ft.hosts[0]).ip);
    }

    #[test]
    fn tiny_host_lists_handled() {
        assert!(TrafficPattern::RandomPermutation
            .pairs(&hosts(1), 0)
            .is_empty());
        assert!(TrafficPattern::RandomPermutation.pairs(&[], 0).is_empty());
        let two = TrafficPattern::RandomPermutation.pairs(&hosts(2), 0);
        assert_eq!(two.len(), 2);
    }
}

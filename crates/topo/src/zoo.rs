//! Topology Zoo loader: a std-only GML parser and a vendored corpus.
//!
//! The Internet Topology Zoo publishes real WAN topologies (Abilene, GÉANT,
//! …) as GML files. This module parses the subset of GML those files use —
//! `graph [ node [ id label Latitude Longitude ] edge [ source target
//! LinkSpeed ] ]` — and maps each graph onto a [`Topology`] of routers:
//!
//! * node ids are assigned in **first-seen file order**, so the same file
//!   always yields the same `NodeId`s (byte-determinism across runs and
//!   worker counts depends on this);
//! * link capacity comes from `LinkSpeedRaw` (bps) or `LinkSpeed` +
//!   `LinkSpeedUnits`, defaulting to 1 Gbps;
//! * link latency comes from great-circle distance between the endpoints'
//!   `Latitude`/`Longitude` at ~200 km/ms (fiber), defaulting to 1 ms when
//!   either endpoint has no coordinates.
//!
//! [`ZooCorpus`] catalogs a directory of `.gml` files by name;
//! [`ZooCorpus::vendored`] opens the corpus shipped under `crates/topo/zoo`.

use horse_net::topology::{NodeId, Topology};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

/// Errors from parsing a GML file or loading a corpus entry.
#[derive(Debug)]
pub enum ZooError {
    /// Malformed GML: unbalanced brackets, a value where a key was
    /// expected, or a missing mandatory field.
    Gml(String),
    /// The corpus directory or file could not be read.
    Io(std::io::Error),
    /// `load` was asked for a name the corpus does not contain.
    UnknownTopology(String),
}

impl fmt::Display for ZooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZooError::Gml(m) => write!(f, "gml parse error: {m}"),
            ZooError::Io(e) => write!(f, "corpus io error: {e}"),
            ZooError::UnknownTopology(n) => write!(f, "unknown zoo topology {n:?}"),
        }
    }
}

impl std::error::Error for ZooError {}

impl From<std::io::Error> for ZooError {
    fn from(e: std::io::Error) -> ZooError {
        ZooError::Io(e)
    }
}

/// One `node [ … ]` stanza, in file order.
#[derive(Debug, Clone)]
pub struct ZooNode {
    /// The file's `id` field (referenced by edges; arbitrary integers).
    pub id: i64,
    /// The `label` field, usually a city name. May repeat or be empty.
    pub label: String,
    pub latitude: Option<f64>,
    pub longitude: Option<f64>,
}

/// One `edge [ … ]` stanza, in file order.
#[derive(Debug, Clone)]
pub struct ZooEdge {
    pub source: i64,
    pub target: i64,
    /// Capacity in bits/s if the file carried one (`LinkSpeedRaw`, or
    /// `LinkSpeed` scaled by `LinkSpeedUnits`).
    pub speed_bps: Option<f64>,
}

/// A parsed Topology Zoo graph, preserving file order for determinism.
#[derive(Debug, Clone)]
pub struct ZooGraph {
    /// The `Network` attribute if present, else the name `parse` was given.
    pub name: String,
    pub nodes: Vec<ZooNode>,
    pub edges: Vec<ZooEdge>,
}

// ---------------------------------------------------------------------------
// GML parsing (std-only, recursive descent over a token stream)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Open,
    Close,
    Word(String),
    Str(String),
}

fn tokenize(text: &str) -> Result<Vec<Tok>, ZooError> {
    let mut toks = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '[' => {
                chars.next();
                toks.push(Tok::Open);
            }
            ']' => {
                chars.next();
                toks.push(Tok::Close);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => {
                            if let Some(e) = chars.next() {
                                s.push(e);
                            }
                        }
                        Some(c) => s.push(c),
                        None => return Err(ZooError::Gml("unterminated string".into())),
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut w = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '[' || c == ']' || c == '"' {
                        break;
                    }
                    w.push(c);
                    chars.next();
                }
                toks.push(Tok::Word(w));
            }
        }
    }
    Ok(toks)
}

/// A GML value: scalar (number or bare word), quoted string, or nested list.
#[derive(Debug, Clone)]
enum Val {
    Num(f64),
    Str(String),
    List(Vec<(String, Val)>),
}

impl Val {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            Val::Str(s) => s.trim().parse().ok(),
            Val::List(_) => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            Val::Num(_) | Val::List(_) => None,
        }
    }
}

/// Parse `key value` pairs until `]` or end of stream.
fn parse_list(
    toks: &[Tok],
    mut i: usize,
    top: bool,
) -> Result<(Vec<(String, Val)>, usize), ZooError> {
    let mut out = Vec::new();
    loop {
        match toks.get(i) {
            None => {
                if top {
                    return Ok((out, i));
                }
                return Err(ZooError::Gml("unbalanced brackets".into()));
            }
            Some(Tok::Close) => {
                if top {
                    return Err(ZooError::Gml("unbalanced brackets".into()));
                }
                return Ok((out, i + 1));
            }
            Some(Tok::Open) => return Err(ZooError::Gml("list without a key".into())),
            Some(Tok::Str(_)) => return Err(ZooError::Gml("string where key expected".into())),
            Some(Tok::Word(key)) => {
                let key = key.clone();
                i += 1;
                let val = match toks.get(i) {
                    Some(Tok::Open) => {
                        let (list, next) = parse_list(toks, i + 1, false)?;
                        i = next;
                        Val::List(list)
                    }
                    Some(Tok::Str(s)) => {
                        i += 1;
                        Val::Str(s.clone())
                    }
                    Some(Tok::Word(w)) => {
                        let v = match w.parse::<f64>() {
                            Ok(n) => Val::Num(n),
                            Err(_) => Val::Str(w.clone()),
                        };
                        i += 1;
                        v
                    }
                    Some(Tok::Close) | None => {
                        return Err(ZooError::Gml(format!("key {key:?} without a value")))
                    }
                };
                out.push((key, val));
            }
        }
    }
}

fn field<'a>(list: &'a [(String, Val)], key: &str) -> Option<&'a Val> {
    list.iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(key))
        .map(|(_, v)| v)
}

fn edge_speed_bps(list: &[(String, Val)]) -> Option<f64> {
    if let Some(raw) = field(list, "LinkSpeedRaw").and_then(Val::as_f64) {
        if raw > 0.0 {
            return Some(raw);
        }
    }
    let speed = field(list, "LinkSpeed").and_then(Val::as_f64)?;
    if speed <= 0.0 {
        return None;
    }
    let unit = match field(list, "LinkSpeedUnits").and_then(Val::as_str) {
        Some(u) if u.starts_with('G') || u.starts_with('g') => 1e9,
        Some(u) if u.starts_with('M') || u.starts_with('m') => 1e6,
        Some(u) if u.starts_with('K') || u.starts_with('k') => 1e3,
        // Zoo files always carry a unit next to LinkSpeed; assume Mbps (the
        // most common) when it is missing rather than misreading 10 as 10 bps.
        _ => 1e6,
    };
    Some(speed * unit)
}

impl ZooGraph {
    /// Parse GML text. `fallback_name` names the graph when the file has no
    /// `Network` attribute (typically the file stem).
    pub fn parse(text: &str, fallback_name: &str) -> Result<ZooGraph, ZooError> {
        let toks = tokenize(text)?;
        let (doc, _) = parse_list(&toks, 0, true)?;
        let graph = match field(&doc, "graph") {
            Some(Val::List(l)) => l,
            _ => return Err(ZooError::Gml("no graph [ … ] block".into())),
        };
        let name = field(graph, "Network")
            .and_then(Val::as_str)
            .filter(|s| !s.is_empty())
            .unwrap_or(fallback_name)
            .to_string();
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        for (key, val) in graph {
            let list = match val {
                Val::List(l) => l,
                _ => continue,
            };
            if key.eq_ignore_ascii_case("node") {
                let id = field(list, "id")
                    .and_then(Val::as_f64)
                    .ok_or_else(|| ZooError::Gml("node without id".into()))?
                    as i64;
                nodes.push(ZooNode {
                    id,
                    label: field(list, "label")
                        .and_then(Val::as_str)
                        .unwrap_or("")
                        .to_string(),
                    latitude: field(list, "Latitude").and_then(Val::as_f64),
                    longitude: field(list, "Longitude").and_then(Val::as_f64),
                });
            } else if key.eq_ignore_ascii_case("edge") {
                let source = field(list, "source")
                    .and_then(Val::as_f64)
                    .ok_or_else(|| ZooError::Gml("edge without source".into()))?
                    as i64;
                let target = field(list, "target")
                    .and_then(Val::as_f64)
                    .ok_or_else(|| ZooError::Gml("edge without target".into()))?
                    as i64;
                edges.push(ZooEdge {
                    source,
                    target,
                    speed_bps: edge_speed_bps(list),
                });
            }
        }
        if nodes.is_empty() {
            return Err(ZooError::Gml("graph has no nodes".into()));
        }
        Ok(ZooGraph { name, nodes, edges })
    }

    /// Build a router-only [`Topology`]. Node ids follow first-seen file
    /// order; self-loops and duplicate edges are dropped; capacity defaults
    /// to 1 Gbps and latency to geo distance (1 ms without coordinates).
    /// Returns the topology and the routers in file order.
    pub fn build(&self) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let mut by_gml_id: HashMap<i64, NodeId> = HashMap::new();
        let mut taken: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut routers = Vec::with_capacity(self.nodes.len());
        for (idx, n) in self.nodes.iter().enumerate() {
            let base = sanitize_label(&n.label);
            let name = if base.is_empty() || !taken.insert(base.clone()) {
                let alt = if base.is_empty() {
                    format!("node{idx}")
                } else {
                    format!("{base}-{idx}")
                };
                taken.insert(alt.clone());
                alt
            } else {
                base
            };
            let ip = Ipv4Addr::new(10, 200 + (idx / 250) as u8, (idx % 250) as u8, 1);
            let r = t.add_router(name, ip);
            // Duplicate GML ids: first stanza wins, matching first-seen order.
            by_gml_id.entry(n.id).or_insert(r);
            routers.push(r);
        }
        let coords: HashMap<i64, (f64, f64)> = self
            .nodes
            .iter()
            .filter_map(|n| Some((n.id, (n.latitude?, n.longitude?))))
            .collect();
        for e in &self.edges {
            let (a, b) = match (by_gml_id.get(&e.source), by_gml_id.get(&e.target)) {
                (Some(&a), Some(&b)) => (a, b),
                _ => continue, // dangling endpoint: drop the edge
            };
            if a == b || t.link_between(a, b).is_some() {
                continue;
            }
            let bps = e.speed_bps.unwrap_or(1e9).max(1e6);
            let delay_ns = match (coords.get(&e.source), coords.get(&e.target)) {
                (Some(&p), Some(&q)) => geo_delay_ns(p, q),
                _ => 1_000_000,
            };
            t.add_link(a, b, bps, delay_ns);
        }
        (t, routers)
    }
}

/// Keep `[A-Za-z0-9]`, fold runs of anything else to a single `-`.
fn sanitize_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else if !out.is_empty() && !out.ends_with('-') {
            out.push('-');
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

/// Great-circle distance at ~200 km/ms in fiber → 5 µs per km, floored at
/// 0.1 ms so co-located PoPs still have a nonzero propagation delay.
fn geo_delay_ns(a: (f64, f64), b: (f64, f64)) -> u64 {
    let km = haversine_km(a, b);
    ((km * 5_000.0) as u64).max(100_000)
}

fn haversine_km((lat1, lon1): (f64, f64), (lat2, lon2): (f64, f64)) -> f64 {
    let r = 6371.0;
    let dlat = (lat2 - lat1).to_radians();
    let dlon = (lon2 - lon1).to_radians();
    let h = (dlat / 2.0).sin().powi(2)
        + lat1.to_radians().cos() * lat2.to_radians().cos() * (dlon / 2.0).sin().powi(2);
    2.0 * r * h.sqrt().asin()
}

// ---------------------------------------------------------------------------
// Corpus catalog
// ---------------------------------------------------------------------------

/// A directory of `.gml` files, cataloged by file stem in sorted order so
/// `names()` is stable regardless of filesystem iteration order.
#[derive(Debug, Clone)]
pub struct ZooCorpus {
    dir: PathBuf,
    names: Vec<String>,
}

impl ZooCorpus {
    /// Scan `dir` for `*.gml` files. Names are the file stems, sorted.
    pub fn open(dir: impl AsRef<Path>) -> Result<ZooCorpus, ZooError> {
        let dir = dir.as_ref().to_path_buf();
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "gml") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        names.dedup();
        Ok(ZooCorpus { dir, names })
    }

    /// The corpus vendored with this crate under `crates/topo/zoo`.
    pub fn vendored() -> ZooCorpus {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("zoo");
        ZooCorpus::open(&dir).expect("vendored zoo corpus should ship with the crate")
    }

    /// Topology names (file stems), sorted.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Parse one topology by name.
    pub fn load(&self, name: &str) -> Result<ZooGraph, ZooError> {
        if !self.names.iter().any(|n| n == name) {
            return Err(ZooError::UnknownTopology(name.to_string()));
        }
        let text = std::fs::read_to_string(self.dir.join(format!("{name}.gml")))?;
        ZooGraph::parse(&text, name)
    }

    /// Parse and build one topology by name.
    pub fn build(&self, name: &str) -> Result<(Topology, Vec<NodeId>), ZooError> {
        Ok(self.load(name)?.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
        Creator "Topology Zoo Toolset"
        graph [
          Network "Mini"
          directed 0
          node [ id 3 label "New York" Latitude 40.71 Longitude -74.00 ]
          node [ id 7 label "Chicago"  Latitude 41.88 Longitude -87.63 ]
          node [ id 9 label "Chicago" ]
          edge [ source 3 target 7 LinkSpeed "10" LinkSpeedUnits "G" ]
          edge [ source 7 target 9 LinkSpeedRaw 2.5e9 ]
          edge [ source 7 target 3 ]
          edge [ source 9 target 9 ]
        ]
    "#;

    #[test]
    fn parses_nodes_edges_and_speeds() {
        let g = ZooGraph::parse(MINI, "fallback").unwrap();
        assert_eq!(g.name, "Mini");
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.edges.len(), 4);
        assert_eq!(g.nodes[0].label, "New York");
        assert_eq!(g.nodes[0].latitude, Some(40.71));
        assert_eq!(g.edges[0].speed_bps, Some(10e9));
        assert_eq!(g.edges[1].speed_bps, Some(2.5e9));
        assert_eq!(g.edges[2].speed_bps, None);
    }

    #[test]
    fn build_is_deterministic_and_dedups() {
        let g = ZooGraph::parse(MINI, "m").unwrap();
        let (t, routers) = g.build();
        assert_eq!(routers.len(), 3);
        // First-seen order: node ids 0,1,2 in file order regardless of GML ids.
        assert_eq!(t.node(routers[0]).name, "New-York");
        assert_eq!(t.node(routers[1]).name, "Chicago");
        // Duplicate label gets an index suffix.
        assert_eq!(t.node(routers[2]).name, "Chicago-2");
        // 4 stanzas → 2 links: reverse duplicate and self-loop dropped.
        assert_eq!(t.link_count(), 2);
        let (t2, _) = g.build();
        assert_eq!(t2.node(routers[0]).name, "New-York");
        assert_eq!(t2.link_count(), 2);
        // Geo latency: NY–Chicago ≈ 1145 km ≈ 5.7 ms.
        let (lid, _) = t.link_between(routers[0], routers[1]).unwrap();
        let d = t.link(lid).delay_ns;
        assert!((4_000_000..8_000_000).contains(&d), "delay {d}");
        // No coords on node 9 → default 1 ms.
        let (lid2, _) = t.link_between(routers[1], routers[2]).unwrap();
        assert_eq!(t.link(lid2).delay_ns, 1_000_000);
    }

    #[test]
    fn rejects_malformed_gml() {
        assert!(ZooGraph::parse("graph [ node [ id 1 ]", "x").is_err());
        assert!(ZooGraph::parse("graph [ ]", "x").is_err());
        assert!(ZooGraph::parse("nodes only, no graph", "x").is_err());
    }

    #[test]
    fn vendored_corpus_loads_and_is_connected() {
        let corpus = ZooCorpus::vendored();
        assert!(
            corpus.len() >= 50,
            "vendored corpus has only {} topologies",
            corpus.len()
        );
        let mut sorted = corpus.names().to_vec();
        sorted.sort();
        assert_eq!(sorted, corpus.names(), "names must be sorted");
        for name in corpus.names() {
            let (t, routers) = corpus.build(name).unwrap_or_else(|e| {
                panic!("corpus entry {name} failed: {e}");
            });
            assert!(routers.len() >= 4, "{name}: too few routers");
            for r in &routers[1..] {
                assert!(
                    t.hop_distance(routers[0], *r).is_some(),
                    "{name}: router {r:?} unreachable"
                );
            }
        }
    }

    #[test]
    fn abilene_golden() {
        let corpus = ZooCorpus::vendored();
        let g = corpus.load("Abilene").expect("Abilene in corpus");
        assert_eq!(g.name, "Abilene");
        assert_eq!(g.nodes.len(), 11);
        assert_eq!(g.edges.len(), 14);
        let (t, routers) = g.build();
        assert_eq!(t.node_count(), 11);
        assert_eq!(t.link_count(), 14);
        // Stable first-seen ids: re-parse, re-build, same names per slot.
        let (t2, routers2) = corpus.load("Abilene").unwrap().build();
        for (a, b) in routers.iter().zip(&routers2) {
            assert_eq!(t.node(*a).name, t2.node(*b).name);
        }
    }
}

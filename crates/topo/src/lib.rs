//! # horse-topo — topology builders
//!
//! Builders for the network shapes the Horse demo uses (Al-Fares fat-trees
//! with 4/6/8 pods) plus the usual suspects for other experiments (linear,
//! star, leaf–spine, Waxman random WANs), a Topology Zoo GML loader with a
//! vendored corpus of real-world WAN graphs ([`zoo`]), and the traffic
//! patterns the demo's workload and the Hedera evaluation use (random
//! permutation, stride, staggered).
//!
//! For BGP scenarios the fat-tree builder also synthesizes RFC 7938-style
//! configurations: a private AS number per switch, eBGP sessions on every
//! inter-switch link over /30-style link addresses, multipath enabled, and
//! each edge (ToR) switch originating its host subnet.

pub mod fattree;
pub mod pattern;
pub mod scenario;
pub mod shapes;
pub mod spec;
pub mod synth;
pub mod zoo;

pub use fattree::{BgpNodeSetup, FatTree, SwitchRole};
pub use pattern::{TrafficPair, TrafficPattern};
pub use scenario::{PolicyScenario, ALL_SCENARIOS};
pub use shapes::{leaf_spine, linear, pop_wan, star, waxman_wan};
pub use spec::{BuiltTopology, TopologySpec};
pub use synth::{
    bgp_setups_for, bgp_setups_with_networks, spread_originations, stub_originations, synth_prefix,
    wan_timers,
};
pub use zoo::{ZooCorpus, ZooError, ZooGraph};

//! [`TopologySpec`] — a serializable description of *which* network an
//! experiment runs on, decoupled from how it is built.
//!
//! Sweeps and checkpoints need a value type: cheap to clone, ordered (cache
//! keys), canonically printable (plan hashes). `TopologySpec` is that type;
//! [`TopologySpec::build`] turns it into a [`BuiltTopology`] — the shared
//! `Arc<Topology>` plus whatever sidecar data the shape implies (the
//! [`FatTree`] template for fat-trees, router lists and synthetic
//! originations for router-only WANs).

use crate::fattree::{FatTree, SwitchRole};
use crate::synth::{spread_originations, stub_originations};
use crate::zoo::ZooCorpus;
use horse_net::addr::Ipv4Prefix;
use horse_net::topology::{NodeId, Topology};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Which network to run on. The sweep grid's topology axis.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TopologySpec {
    /// An Al-Fares `k`-pod fat-tree (the demo's data center).
    FatTree {
        /// Pod count (even, ≥ 4).
        k: usize,
    },
    /// A Topology Zoo graph from the vendored corpus
    /// ([`ZooCorpus::vendored`]), by catalog name (file stem).
    Zoo {
        /// Catalog name, e.g. `"Abilene"`.
        name: String,
    },
    /// The deterministic PoP-ring WAN ([`crate::shapes::pop_wan`]) sized
    /// to roughly `routers` routers, with `prefixes` synthetic /24s spread
    /// round-robin over its leaf routers.
    PopWan {
        /// Approximate router count (PoPs plus leaves; the ring shape
        /// rounds down to `pops * (1 + leaves_per_pop)`).
        routers: usize,
        /// Total originated prefixes.
        prefixes: usize,
    },
}

/// `Experiment::demo(k, …)` call sites migrate by passing `k` where a spec
/// is expected: a bare pod count still means "that fat-tree".
impl From<usize> for TopologySpec {
    fn from(k: usize) -> TopologySpec {
        TopologySpec::FatTree { k }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.tag())
    }
}

impl TopologySpec {
    /// Canonical short tag, used in run labels and plan hashes:
    /// `k4`, `zoo-Abilene`, `wan48x256`.
    pub fn tag(&self) -> String {
        match self {
            TopologySpec::FatTree { k } => format!("k{k}"),
            TopologySpec::Zoo { name } => format!("zoo-{name}"),
            TopologySpec::PopWan { routers, prefixes } => format!("wan{routers}x{prefixes}"),
        }
    }

    /// True for the demo fat-tree shape (the only spec whose experiments
    /// carry hosts and traffic; the others are control-plane-only WANs).
    pub fn is_fat_tree(&self) -> bool {
        matches!(self, TopologySpec::FatTree { .. })
    }

    /// Builds the network. `role` only matters for fat-trees (BGP routers
    /// vs OpenFlow switches); zoo and PoP WANs are always router-only.
    ///
    /// Panics if a [`TopologySpec::Zoo`] name is not in the vendored
    /// corpus — sweep expansion should validate names up front via
    /// [`ZooCorpus::names`].
    pub fn build(&self, role: SwitchRole) -> BuiltTopology {
        match self {
            TopologySpec::FatTree { k } => {
                let ft = Arc::new(FatTree::build(*k, role, 1e9, 1_000));
                BuiltTopology {
                    spec: self.clone(),
                    topo: Arc::clone(&ft.topo),
                    fat_tree: Some(ft),
                    routers: Vec::new(),
                    originations: BTreeMap::new(),
                }
            }
            TopologySpec::Zoo { name } => {
                let corpus = ZooCorpus::vendored();
                let (topo, routers) = corpus
                    .build(name)
                    .unwrap_or_else(|e| panic!("zoo topology {name:?}: {e}"));
                // Stub sites originate, transit cores don't — one /24 per
                // minimum-degree router, in deterministic router order.
                let originations = stub_originations(&topo, 1);
                BuiltTopology {
                    spec: self.clone(),
                    topo: Arc::new(topo),
                    fat_tree: None,
                    routers,
                    originations,
                }
            }
            TopologySpec::PopWan { routers, prefixes } => {
                let (pops, leaves_per_pop) = pop_wan_shape(*routers);
                let (topo, cores, leaves) = crate::shapes::pop_wan(pops, leaves_per_pop, 1e9);
                let origin_at = if leaves.is_empty() { &cores } else { &leaves };
                let originations = spread_originations(origin_at, *prefixes);
                let routers: Vec<NodeId> = cores.into_iter().chain(leaves).collect();
                BuiltTopology {
                    spec: self.clone(),
                    topo: Arc::new(topo),
                    fat_tree: None,
                    routers,
                    originations,
                }
            }
        }
    }
}

/// `PopWan { routers }` → `(pops, leaves_per_pop)` for
/// [`crate::shapes::pop_wan`]: ~1 PoP per 5 routers, remainder as leaves.
fn pop_wan_shape(routers: usize) -> (usize, usize) {
    let pops = (routers / 5).clamp(3, 250);
    let leaves_per_pop = routers.saturating_sub(pops) / pops;
    (pops, leaves_per_pop)
}

/// A built network: the shared graph plus shape-specific sidecar data.
#[derive(Debug, Clone)]
pub struct BuiltTopology {
    /// The spec this was built from.
    pub spec: TopologySpec,
    /// The graph, shared across every run over this shape.
    pub topo: Arc<Topology>,
    /// The fat-tree template (host lists, pod structure) when the spec is
    /// a fat-tree; `None` for router-only WANs.
    pub fat_tree: Option<Arc<FatTree>>,
    /// Routers in deterministic build order (zoo: file order; pop-wan:
    /// cores then leaves). Empty for fat-trees (use `fat_tree` instead).
    pub routers: Vec<NodeId>,
    /// Synthetic per-router originations for hostless shapes, for
    /// [`crate::synth::bgp_setups_with_networks`]. Empty for fat-trees
    /// (edge switches originate their host subnets instead).
    pub originations: BTreeMap<NodeId, Vec<Ipv4Prefix>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_usize_is_a_fat_tree() {
        let spec: TopologySpec = 4.into();
        assert_eq!(spec, TopologySpec::FatTree { k: 4 });
        assert_eq!(spec.tag(), "k4");
        assert!(spec.is_fat_tree());
    }

    #[test]
    fn tags_are_canonical() {
        assert_eq!(
            TopologySpec::Zoo {
                name: "Abilene".into()
            }
            .tag(),
            "zoo-Abilene"
        );
        assert_eq!(
            TopologySpec::PopWan {
                routers: 48,
                prefixes: 256
            }
            .tag(),
            "wan48x256"
        );
    }

    #[test]
    fn fat_tree_build_carries_the_template() {
        let bt = TopologySpec::FatTree { k: 4 }.build(SwitchRole::BgpRouter);
        let ft = bt.fat_tree.expect("fat-tree sidecar");
        assert_eq!(ft.k, 4);
        assert!(Arc::ptr_eq(&bt.topo, &ft.topo));
        assert!(bt.originations.is_empty());
    }

    #[test]
    fn zoo_build_originates_at_stubs_only() {
        let bt = TopologySpec::Zoo {
            name: "Abilene".into(),
        }
        .build(SwitchRole::BgpRouter);
        assert_eq!(bt.topo.node_count(), 11);
        assert_eq!(bt.routers.len(), 11);
        assert!(!bt.originations.is_empty());
        // Abilene's minimum degree is 2; higher-degree PoPs must not
        // originate.
        let min_deg = bt
            .routers
            .iter()
            .map(|r| bt.topo.neighbors(*r).len())
            .min()
            .unwrap();
        for r in &bt.routers {
            let deg = bt.topo.neighbors(*r).len();
            assert_eq!(bt.originations.contains_key(r), deg == min_deg);
        }
    }

    #[test]
    fn pop_wan_build_spreads_prefixes() {
        let bt = TopologySpec::PopWan {
            routers: 24,
            prefixes: 10,
        }
        .build(SwitchRole::BgpRouter);
        let total: usize = bt.originations.values().map(Vec::len).sum();
        assert_eq!(total, 10);
        assert!(bt.topo.node_count() <= 24);
        // Same spec, same build.
        let bt2 = TopologySpec::PopWan {
            routers: 24,
            prefixes: 10,
        }
        .build(SwitchRole::BgpRouter);
        assert_eq!(bt.topo.node_count(), bt2.topo.node_count());
        assert_eq!(bt.originations, bt2.originations);
    }
}

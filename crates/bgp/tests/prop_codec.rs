//! Property tests on the BGP wire codec: arbitrary messages round-trip
//! byte-exactly, and arbitrary bytes never panic the decoder.

use horse_bgp::msg::{
    AsPathSegment, Capability, Message, Notification, OpenMsg, Origin, PathAttributes, UpdateMsg,
};
use horse_net::addr::Ipv4Prefix;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn prefixes() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Ipv4Prefix::new(Ipv4Addr::from(bits), len))
}

fn origins() -> impl Strategy<Value = Origin> {
    prop_oneof![
        Just(Origin::Igp),
        Just(Origin::Egp),
        Just(Origin::Incomplete)
    ]
}

fn segments() -> impl Strategy<Value = AsPathSegment> {
    prop_oneof![
        prop::collection::vec(any::<u16>(), 0..8).prop_map(AsPathSegment::Sequence),
        prop::collection::vec(any::<u16>(), 1..8).prop_map(AsPathSegment::Set),
    ]
}

fn attrs() -> impl Strategy<Value = PathAttributes> {
    (
        origins(),
        prop::collection::vec(segments(), 0..4),
        any::<u32>(),
        prop::option::of(any::<u32>()),
        prop::option::of(any::<u32>()),
    )
        .prop_map(|(origin, as_path, nh, med, local_pref)| PathAttributes {
            origin,
            as_path,
            next_hop: Ipv4Addr::from(nh),
            med,
            local_pref,
            communities: vec![],
            unknown: vec![],
        })
}

fn messages() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Keepalive),
        (any::<u16>(), 3u16..=65535, any::<u32>()).prop_map(|(asn, hold, id)| {
            Message::Open(OpenMsg {
                version: 4,
                my_as: asn,
                hold_time: if hold < 3 { 0 } else { hold },
                bgp_id: Ipv4Addr::from(id),
                capabilities: vec![
                    Capability::Multiprotocol { afi: 1, safi: 1 },
                    Capability::FourOctetAs(u32::from(asn)),
                ],
            })
        }),
        (
            prop::collection::vec(prefixes(), 0..12),
            prop::option::of(attrs()),
            prop::collection::vec(prefixes(), 0..12),
        )
            .prop_map(|(withdrawn, attrs, nlri)| {
                // NLRI without attributes is illegal; drop NLRI then.
                let nlri = if attrs.is_some() { nlri } else { vec![] };
                Message::Update(UpdateMsg {
                    withdrawn,
                    attrs: attrs.map(std::sync::Arc::new),
                    nlri,
                })
            }),
        (
            any::<u8>(),
            any::<u8>(),
            prop::collection::vec(any::<u8>(), 0..32)
        )
            .prop_map(|(code, subcode, data)| Message::Notification(Notification {
                code,
                subcode,
                data
            })),
    ]
}

proptest! {
    #[test]
    fn roundtrip(msg in messages()) {
        let bytes = msg.encode();
        let (decoded, consumed) = Message::decode(&bytes)
            .expect("own encoding decodes")
            .expect("complete message");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, msg);
    }

    /// Decoding arbitrary bytes never panics; it errors or asks for more.
    #[test]
    fn decode_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    /// Decoding random corruptions of valid messages never panics.
    #[test]
    fn decode_corrupted(msg in messages(), flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)) {
        let mut bytes = msg.encode().to_vec();
        for (idx, val) in flips {
            let i = idx.index(bytes.len());
            bytes[i] = val;
        }
        let _ = Message::decode(&bytes);
    }

    /// A concatenated stream of messages reassembles exactly, regardless of
    /// chunking.
    #[test]
    fn stream_reassembly(msgs in prop::collection::vec(messages(), 1..6), chunk in 1usize..40) {
        let mut all = Vec::new();
        for m in &msgs {
            all.extend_from_slice(&m.encode());
        }
        let mut dec = horse_bgp::msg::StreamDecoder::new();
        let mut got = Vec::new();
        for c in all.chunks(chunk) {
            dec.push(c);
            while let Some(m) = dec.next().expect("valid stream") {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
    }
}

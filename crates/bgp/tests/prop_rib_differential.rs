//! Differential property test: the compact-id [`LocRib`] must be
//! observationally identical to BOTH reference models — the address-keyed
//! indexed RIB ([`BtreeRib`], the pre-compact-id shape) and the pre-index
//! [`NaiveRib`] — under arbitrary operation sequences.
//!
//! Every operation's affected-set is compared (the compact-id RIB returns
//! value-sorted `PrefixId` slices, mapped back through its interner), and
//! after every operation the full observable surface is compared: the
//! prefix index, and per prefix the decision (best path, multipath set,
//! order included) and the effective next-hop set. Attribute pools are
//! deliberately tiny so interning collisions, redundant re-announcements,
//! and AS-loop filtering all occur often.

use horse_bgp::msg::{AsPathSegment, Origin, PathAttributes, UpdateMsg};
use horse_bgp::naive::{NaiveDecision, NaiveRib};
use horse_bgp::{BtreeRib, Decision, LocRib};
use horse_net::addr::Ipv4Prefix;
use horse_net::intern::PrefixId;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

const LOCAL_AS: u16 = 64512;

/// The peer pool. Addresses are fixed (and never `0.0.0.0`, which is the
/// local-origination sentinel); eBGP-ness is a deterministic per-peer
/// session property, as it is in the speaker.
fn peer(idx: usize) -> (Ipv4Addr, bool) {
    let addr = Ipv4Addr::new(192, 0, 2, (idx as u8 % 4) + 1);
    (addr, idx % 2 == 0)
}

fn prefix(idx: usize) -> Ipv4Prefix {
    Ipv4Prefix::new(Ipv4Addr::new(10, (idx % 6) as u8, 0, 0), 16)
}

fn origins() -> impl Strategy<Value = Origin> {
    prop_oneof![
        Just(Origin::Igp),
        Just(Origin::Egp),
        Just(Origin::Incomplete)
    ]
}

/// Attributes drawn from a tiny component space so distinct draws often
/// compare equal (exercising the intern table) and sometimes contain the
/// local AS (exercising loop filtering → implicit withdrawal).
fn attrs() -> impl Strategy<Value = PathAttributes> {
    (
        origins(),
        prop::collection::vec((0usize..4).prop_map(|i| [LOCAL_AS, 100, 200, 300][i]), 0..3),
        (0usize..2).prop_map(|i| Ipv4Addr::new(10, 0, 0, (i as u8) + 1)),
        prop::option::of((0usize..2).prop_map(|i| [0u32, 10][i])),
        prop::option::of((0usize..3).prop_map(|i| [50u32, 100, 200][i])),
    )
        .prop_map(|(origin, asns, next_hop, med, local_pref)| PathAttributes {
            origin,
            as_path: vec![AsPathSegment::Sequence(asns)],
            next_hop,
            med,
            local_pref,
            communities: vec![],
            unknown: vec![],
        })
}

#[derive(Debug, Clone)]
enum Op {
    /// One UPDATE from a peer: withdrawals plus (optionally) attributed
    /// NLRI. `attr` indexes the attribute pool.
    Update {
        peer: usize,
        withdrawn: Vec<usize>,
        attr: Option<usize>,
        nlri: Vec<usize>,
    },
    /// Session down: drop everything learned from the peer.
    DropPeer { peer: usize },
    /// Locally originate a prefix.
    Originate { prefix: usize, next_hop: usize },
    /// Withdraw a local origination.
    WithdrawLocal { prefix: usize },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // The vendored proptest has no weighted prop_oneof; bias toward
    // updates by repeating that arm.
    fn update_op() -> impl Strategy<Value = Op> {
        (
            0usize..4,
            prop::collection::vec(0usize..6, 0..3),
            prop::option::of(0usize..5),
            prop::collection::vec(0usize..6, 0..4),
        )
            .prop_map(|(peer, withdrawn, attr, nlri)| Op::Update {
                peer,
                withdrawn,
                attr,
                nlri,
            })
    }
    let op = prop_oneof![
        update_op(),
        update_op(),
        update_op(),
        (0usize..4).prop_map(|peer| Op::DropPeer { peer }),
        (0usize..6, 0usize..2).prop_map(|(prefix, next_hop)| Op::Originate { prefix, next_hop }),
        (0usize..6).prop_map(|prefix| Op::WithdrawLocal { prefix }),
    ];
    prop::collection::vec(op, 1..40)
}

/// A decision flattened to owned, directly comparable data:
/// `(peer, attrs, ebgp)` for best plus the ordered multipath list and the
/// effective next-hop set.
type FlatDecision = (
    (Ipv4Addr, PathAttributes, bool),
    Vec<(Ipv4Addr, PathAttributes, bool)>,
    Vec<Ipv4Addr>,
);

fn flatten_fast(d: &Decision) -> FlatDecision {
    (
        (d.best.peer, (*d.best.attrs).clone(), d.best.ebgp),
        d.multipath
            .iter()
            .map(|r| (r.peer, (*r.attrs).clone(), r.ebgp))
            .collect(),
        d.next_hops.clone(),
    )
}

fn flatten_naive(d: &NaiveDecision<'_>, hops: Vec<Ipv4Addr>) -> FlatDecision {
    (
        (d.best.peer, d.best.attrs.clone(), d.best.ebgp),
        d.multipath
            .iter()
            .map(|p| (p.peer, p.attrs.clone(), p.ebgp))
            .collect(),
        hops,
    )
}

/// Maps the compact-id RIB's affected slice back to prefix values. Also
/// asserts the value-sorted contract every downstream consumer relies on.
fn values_of(rib: &LocRib, ids: &[PrefixId]) -> BTreeSet<Ipv4Prefix> {
    let values: Vec<Ipv4Prefix> = ids.iter().map(|&id| rib.prefix_value(id)).collect();
    let set: BTreeSet<Ipv4Prefix> = values.iter().copied().collect();
    assert_eq!(
        values,
        set.iter().copied().collect::<Vec<_>>(),
        "affected ids must arrive sorted by prefix value, deduped"
    );
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn compact_rib_matches_both_reference_models(
        pool in prop::collection::vec(attrs(), 5),
        multipath in any::<bool>(),
        script in ops(),
    ) {
        let mut fast = LocRib::new(LOCAL_AS, multipath);
        let mut btree = BtreeRib::new(LOCAL_AS, multipath);
        let mut naive = NaiveRib::new(LOCAL_AS, multipath);

        for op in &script {
            match op {
                Op::Update { peer: pi, withdrawn, attr, nlri } => {
                    let (addr, ebgp) = peer(*pi);
                    let update = UpdateMsg {
                        withdrawn: withdrawn.iter().map(|i| prefix(*i)).collect(),
                        attrs: attr.map(|i| Arc::new(pool[i].clone())),
                        nlri: nlri.iter().map(|i| prefix(*i)).collect(),
                    };
                    let af = fast.update_from_peer(addr, ebgp, &update);
                    let ab = btree.update_from_peer(addr, ebgp, &update);
                    let an = naive.update_from_peer(addr, ebgp, &update);
                    let af = values_of(&fast, &af);
                    prop_assert_eq!(&af, &ab, "affected sets diverge (btree) on {:?}", op);
                    prop_assert_eq!(af, an, "affected sets diverge (naive) on {:?}", op);
                }
                Op::DropPeer { peer: pi } => {
                    let (addr, _) = peer(*pi);
                    let af = fast.drop_peer(addr);
                    let ab = btree.drop_peer(addr);
                    let an = naive.drop_peer(addr);
                    let af = values_of(&fast, &af);
                    prop_assert_eq!(&af, &ab, "drop_peer affected sets diverge (btree)");
                    prop_assert_eq!(af, an, "drop_peer affected sets diverge (naive)");
                }
                Op::Originate { prefix: qi, next_hop } => {
                    let nh = Ipv4Addr::new(10, 99, 0, (*next_hop as u8) + 1);
                    let id = fast.originate(prefix(*qi), nh);
                    prop_assert_eq!(fast.prefix_value(id), prefix(*qi));
                    btree.originate(prefix(*qi), nh);
                    naive.originate(prefix(*qi), nh);
                }
                Op::WithdrawLocal { prefix: qi } => {
                    let wf = fast.withdraw_local(prefix(*qi));
                    let wb = btree.withdraw_local(prefix(*qi));
                    let wn = naive.withdraw_local(prefix(*qi));
                    if let Some(id) = wf {
                        prop_assert_eq!(fast.prefix_value(id), prefix(*qi));
                    }
                    prop_assert_eq!(wf.is_some(), wb, "withdraw_local diverges (btree)");
                    prop_assert_eq!(wf.is_some(), wn, "withdraw_local diverges (naive)");
                }
            }

            // Full observable surface after every operation.
            prop_assert_eq!(fast.prefixes(), btree.prefixes());
            prop_assert_eq!(fast.prefixes(), naive.prefixes());
            prop_assert_eq!(fast.prefix_count(), btree.prefix_count());
            for qi in 0..6 {
                let p = prefix(qi);
                let df = fast.decide(p).map(|d| flatten_fast(&d));
                let db = btree.decide(p).map(|d| flatten_fast(&d));
                let dn = naive
                    .decide(p)
                    .map(|d| flatten_naive(&d, naive.next_hops(p)));
                prop_assert_eq!(&df, &db, "decision diverges (btree) for {:?} after {:?}", p, op);
                prop_assert_eq!(df, dn, "decision diverges (naive) for {:?} after {:?}", p, op);
                prop_assert_eq!(fast.next_hops(p), btree.next_hops(p));
                prop_assert_eq!(fast.next_hops(p), naive.next_hops(p));
            }
        }
    }
}

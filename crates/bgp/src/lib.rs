//! # horse-bgp — a sans-IO BGP-4 speaker
//!
//! Horse emulates the control plane with *real protocol implementations*:
//! the paper runs Quagga daemons; this crate is the equivalent substrate, a
//! from-scratch BGP-4 speaker that exchanges byte-exact RFC 4271 messages.
//! It is written sans-IO (in the style of smoltcp): the speaker is a pure
//! state machine fed with bytes, transport events and a clock, and it emits
//! bytes and route events. The Connection Manager runs one speaker per
//! emulated router — on real threads over real byte streams in emulation
//! mode, or deterministically inside the simulation loop in virtual mode.
//!
//! Layout:
//!
//! * [`msg`] — RFC 4271 message codec (OPEN / UPDATE / NOTIFICATION /
//!   KEEPALIVE, path attributes, capabilities).
//! * [`session`] — the per-peer finite state machine with connect-retry,
//!   hold and keepalive timers.
//! * [`rib`] — Adj-RIB-In / Loc-RIB and the decision process, with ECMP
//!   multipath relaxation (equal local-pref, AS-path length, origin and
//!   MED routes form a multipath set, as `maximum-paths` does in real
//!   routers — the demo's "BGP + ECMP" scenario depends on this). The RIB
//!   is built around hash-consed path attributes ([`rib::AttrStore`]), an
//!   inverted per-prefix candidate index and a memoized decision cache —
//!   the route-churn fast path.
//! * [`policy`] — per-peer import/export route-maps (prefix / community /
//!   AS-path regex-lite matches; local-pref / MED / community / prepend
//!   sets) and the Gao-Rexford role compiler. Evaluated at exactly two
//!   choke points: RIB ingest and speaker export.
//! * [`naive`] — the pre-index RIB kept as a reference model for
//!   differential tests and the `rib_churn` bench baseline.
//! * [`btree`] — the address-keyed (`BTreeMap`) indexed RIB preserved as
//!   the pre-compact-id reference model and the `table_scale` bench
//!   baseline.
//! * [`speaker`] — ties sessions and RIBs together: originates local
//!   networks, floods UPDATEs with split-horizon and AS-path loop
//!   prevention, and reports effective next-hop sets per prefix.

pub mod btree;
pub mod msg;
pub mod naive;
pub mod policy;
pub mod rib;
pub mod session;
pub mod speaker;

pub use btree::BtreeRib;
pub use msg::{Capability, Message, Notification, OpenMsg, Origin, PathAttributes, UpdateMsg};
pub use policy::{
    gao_rexford_policy, AsPathRegex, PeerPolicy, PeerRole, PolicyAction, PolicyVerdict,
    PrefixMatch, RouteMap, RouteMapClause, RouteMapMatch, RouteMapSet,
};
pub use rib::{AttrId, AttrPool, AttrStore, Decision, LocRib, RibStats, RouteInfo};
pub use session::{PeerConfig, Session, SessionState};
pub use speaker::{BgpConfig, BgpSpeaker, SpeakerOutput};

//! Routing Information Bases and the decision process.
//!
//! One [`LocRib`] per speaker holds the per-peer Adj-RIB-In plus locally
//! originated routes, and answers "what is the best path (and the ECMP
//! multipath set) for this prefix?" following the RFC 4271 §9.1 ranking:
//!
//! 1. highest LOCAL_PREF (default 100),
//! 2. locally originated beats learned,
//! 3. shortest AS_PATH,
//! 4. lowest ORIGIN (IGP < EGP < INCOMPLETE),
//! 5. lowest MED (compared only between routes from the same neighbor AS),
//! 6. eBGP beats iBGP,
//! 7. lowest peer address (router-id proxy) as the final tie-break.
//!
//! With multipath enabled, every candidate equal to the best through step 6
//! joins the multipath set — the relaxation real routers call
//! `maximum-paths`, which the demo's "BGP + ECMP" traffic engineering
//! requires on the fat-tree.
//!
//! ## Compact-id memory shape
//!
//! Fat-tree convergence produces thousands of routes but only a handful of
//! distinct attribute sets, and the speaker reads each decision many times
//! (once for the FIB, once per established peer). Beyond PR 4's
//! hash-consing and memoization, this RIB stores **nothing keyed by an
//! address struct** on the hot path — the shape production daemons use:
//!
//! * [`AttrStore`] hash-conses [`PathAttributes`] into `Arc`-backed
//!   canonical entries with stable [`AttrId`]s; ranking inputs are
//!   precomputed at intern time. An [`AttrPool`] wraps the store in a
//!   shared handle so every speaker in a run interns each attribute set
//!   **once per process**, not once per speaker.
//! * Prefixes and peer addresses are interned to `u32` ids
//!   ([`PrefixId`]/[`PeerId`], first-intern order, same discipline as
//!   `AttrId`). The candidate index, decision cache and per-peer Adj-RIB-In
//!   become dense `Vec`s indexed by id: a decide is an array load, not a
//!   tree walk.
//! * Per prefix, candidates live in a small sorted `Vec` ordered by
//!   `(remote, peer address)` — byte-for-byte the iteration order of the
//!   old `BTreeMap<CandKey, _>`, which the `min_by` tie-break (step 7)
//!   depends on.
//!
//! Ids order by first appearance, **not** by value. Every API that feeds a
//! determinism-sensitive consumer (affected-sets, the live prefix index)
//! therefore returns id slices sorted by *value* via the interner's
//! monotone sort key, so downstream iteration order — and hence wire
//! bytes — is identical to the address-keyed implementation. That
//! implementation survives as [`crate::btree::BtreeRib`] (and the
//! pre-PR 4 model as [`crate::naive`]); the three are driven in lockstep
//! by `tests/prop_rib_differential.rs`.

use crate::msg::{Origin, PathAttributes, UpdateMsg};
use horse_net::addr::Ipv4Prefix;
use horse_net::intern::{IdSet, PeerInterner, PrefixId, PrefixInterner, PrefixPool};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;
use std::sync::{Arc, RwLock, RwLockReadGuard};

/// Stable identifier of an interned attribute set inside one [`AttrStore`].
///
/// Ids are assigned in first-intern order, so equal event sequences produce
/// equal ids — they are deterministic and never reused or compacted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(u32);

impl AttrId {
    /// The raw index (observability/debug output).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// One interned attribute set plus its precomputed ranking inputs.
#[derive(Debug, Clone)]
pub(crate) struct AttrMeta {
    pub(crate) attrs: Arc<PathAttributes>,
    pub(crate) local_pref: u32,
    pub(crate) path_len: u32,
    pub(crate) origin_rank: u8,
    pub(crate) med: u32,
    pub(crate) neighbor_as: Option<u16>,
}

/// Hash-consing store for [`PathAttributes`].
///
/// `intern` returns the id of the canonical entry, creating one only for a
/// never-seen attribute set. The map is keyed by the `Arc` (hashing the
/// inner value), so lookups by borrowed `PathAttributes` never allocate.
#[derive(Debug, Clone, Default)]
pub struct AttrStore {
    ids: HashMap<Arc<PathAttributes>, AttrId>,
    metas: Vec<AttrMeta>,
    /// Distinct sets created (cache misses).
    interns: u64,
    /// Deep clones avoided (cache hits).
    reuses: u64,
}

impl AttrStore {
    /// Interns a shared attribute set, reusing the caller's allocation on a
    /// miss.
    pub fn intern(&mut self, attrs: &Arc<PathAttributes>) -> AttrId {
        if let Some(id) = self.ids.get(&**attrs) {
            self.reuses += 1;
            return *id;
        }
        self.insert_new(Arc::clone(attrs))
    }

    /// Interns an owned attribute set (allocates the `Arc` only on a miss).
    pub fn intern_owned(&mut self, attrs: PathAttributes) -> AttrId {
        if let Some(id) = self.ids.get(&attrs) {
            self.reuses += 1;
            return *id;
        }
        self.insert_new(Arc::new(attrs))
    }

    fn insert_new(&mut self, attrs: Arc<PathAttributes>) -> AttrId {
        let id = AttrId(self.metas.len() as u32);
        self.interns += 1;
        let meta = AttrMeta {
            local_pref: attrs.local_pref.unwrap_or(100),
            path_len: attrs.as_path_len() as u32,
            origin_rank: match attrs.origin {
                Origin::Igp => 0,
                Origin::Egp => 1,
                Origin::Incomplete => 2,
            },
            med: attrs.med.unwrap_or(0),
            neighbor_as: attrs.neighbor_as(),
            attrs: Arc::clone(&attrs),
        };
        self.ids.insert(attrs, id);
        self.metas.push(meta);
        id
    }

    /// The canonical shared attributes for an id.
    pub fn attrs(&self, id: AttrId) -> &Arc<PathAttributes> {
        &self.metas[id.0 as usize].attrs
    }

    /// Number of distinct attribute sets interned so far (monotone — this
    /// *is* the peak size).
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// `(interns, reuses)` — distinct sets created vs deep clones avoided.
    pub fn counters(&self) -> (u64, u64) {
        (self.interns, self.reuses)
    }

    /// Rough heap footprint of the store: canonical attribute allocations
    /// plus table overhead. An estimate for observability (`mem_*` report
    /// counters), not an allocator measurement.
    pub fn bytes_estimate(&self) -> u64 {
        let mut total = 0u64;
        for m in &self.metas {
            let a = &m.attrs;
            let path: usize = a
                .as_path
                .iter()
                .map(|s| {
                    24 + 2 * match s {
                        crate::msg::AsPathSegment::Sequence(v) => v.len(),
                        crate::msg::AsPathSegment::Set(v) => v.len(),
                    }
                })
                .sum();
            let unknown: usize = a.unknown.iter().map(|(_, _, v)| 40 + v.len()).sum();
            // Arc header + PathAttributes + heap behind it, plus the id-map
            // entry and meta-table slot.
            total += (32
                + std::mem::size_of::<PathAttributes>()
                + path
                + 4 * a.communities.len()
                + unknown
                + std::mem::size_of::<AttrMeta>()
                + 48) as u64;
        }
        total
    }

    pub(crate) fn meta(&self, id: AttrId) -> &AttrMeta {
        &self.metas[id.0 as usize]
    }

    /// The id of an already-interned attribute set, if present. The probe
    /// half of the pool's lock-light intern: callers holding only the read
    /// lock check here and escalate to the write lock on a miss.
    pub fn get(&self, attrs: &PathAttributes) -> Option<AttrId> {
        self.ids.get(attrs).copied()
    }
}

/// A shared handle to one [`AttrStore`].
///
/// `BgpControl` creates one pool per run and hands a clone to every
/// speaker, so a 1000-node experiment interns each distinct attribute set
/// once instead of once per speaker. The handle is a plain
/// `Arc<RwLock<_>>` — **not** copy-on-write: `Arc::make_mut` would fork
/// the table on first write and silently undo the sharing. Correctness
/// does not depend on id *values* (only id equality within one store), so
/// sharing the id space across speakers cannot change any decision or
/// wire byte; pump/sweep determinism holds because the pool is per-run,
/// never process-global across sweep workers.
///
/// Interning is **lock-light**: attribute churn is read-mostly (a
/// converged fleet re-interns the same few hundred sets constantly), so
/// [`AttrPool::intern`] first probes under the read lock and only
/// escalates to the write lock on a genuine miss. Under the intra-run
/// parallel pump, concurrent double-misses are resolved by the store's
/// re-check inside the write lock — one id per value, always. Id *values*
/// may then depend on worker interleaving, which is safe precisely
/// because nothing semantic reads them: ranking uses precomputed metas,
/// wire bytes carry the attributes themselves, announce batching groups
/// by id equality in value-sorted prefix order, and intern/reuse totals
/// count the same events whichever worker wins the race.
#[derive(Debug, Clone, Default)]
pub struct AttrPool(Arc<RwLock<AttrStore>>);

impl AttrPool {
    /// A fresh, empty pool.
    pub fn new() -> AttrPool {
        AttrPool::default()
    }

    /// Read access to the underlying store (held briefly — never across a
    /// call back into a RIB).
    pub fn read(&self) -> RwLockReadGuard<'_, AttrStore> {
        self.0.read().expect("attr pool lock poisoned")
    }

    /// Interns a shared attribute set; the `bool` is true when this call
    /// created the entry (false = fleet-wide reuse). Hits resolve under
    /// the read lock; only a genuine miss takes the write lock.
    pub fn intern(&self, attrs: &Arc<PathAttributes>) -> (AttrId, bool) {
        if let Some(id) = self.read().get(attrs) {
            return (id, false);
        }
        let mut s = self.0.write().expect("attr pool lock poisoned");
        let before = s.interns;
        let id = s.intern(attrs);
        (id, s.interns > before)
    }

    /// Interns an owned attribute set; the `bool` is true on creation.
    /// Same lock discipline as [`AttrPool::intern`].
    pub fn intern_owned(&self, attrs: PathAttributes) -> (AttrId, bool) {
        if let Some(id) = self.read().get(&attrs) {
            return (id, false);
        }
        let mut s = self.0.write().expect("attr pool lock poisoned");
        let before = s.interns;
        let id = s.intern_owned(attrs);
        (id, s.interns > before)
    }

    /// The canonical shared attributes for an id (owned `Arc` — the lock
    /// cannot outlive the call).
    pub fn attrs(&self, id: AttrId) -> Arc<PathAttributes> {
        Arc::clone(self.read().attrs(id))
    }

    /// Number of distinct attribute sets in the pool.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// See [`AttrStore::bytes_estimate`].
    pub fn bytes_estimate(&self) -> u64 {
        self.read().bytes_estimate()
    }

    /// True when `other` is the same underlying store.
    pub fn same_as(&self, other: &AttrPool) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Work/effectiveness counters for the indexed RIB (and the speaker's
/// export cache, merged in by [`crate::speaker::BgpSpeaker::rib_stats`]).
///
/// All counters are cost observability only: they never feed back into
/// routing decisions or wire output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RibStats {
    /// Decision-process invocations (cache hits included).
    pub decide_calls: u64,
    /// Calls answered from the memoized decision cache.
    pub decide_cache_hits: u64,
    /// Calls that ran the ranking over the candidate set.
    pub decide_recomputes: u64,
    /// Cached decisions dropped by mutations.
    pub invalidations: u64,
    /// Candidates examined across all recomputes.
    pub candidate_touches: u64,
    /// Distinct attribute sets this RIB created in its (possibly shared)
    /// store.
    pub attr_interns: u64,
    /// Attribute-set intern hits (deep clones avoided — with a shared
    /// pool, sets first interned by *another* speaker count here).
    pub attr_reuses: u64,
    /// Attribute-store size. Reported only by RIBs owning a private store;
    /// with a shared pool the owner (`BgpControl`) reports the pool size
    /// once, so merged figures never double-count.
    pub attr_store_size: u64,
    /// Export-policy results served from the per-peer cache.
    pub export_cache_hits: u64,
    /// Export-policy computations (cache misses).
    pub export_cache_misses: u64,
}

impl RibStats {
    /// Accumulates `other` (store sizes add — aggregated over speakers the
    /// sum is the fleet-wide distinct-attribute footprint).
    pub fn merge(&mut self, other: &RibStats) {
        self.decide_calls += other.decide_calls;
        self.decide_cache_hits += other.decide_cache_hits;
        self.decide_recomputes += other.decide_recomputes;
        self.invalidations += other.invalidations;
        self.candidate_touches += other.candidate_touches;
        self.attr_interns += other.attr_interns;
        self.attr_reuses += other.attr_reuses;
        self.attr_store_size += other.attr_store_size;
        self.export_cache_hits += other.export_cache_hits;
        self.export_cache_misses += other.export_cache_misses;
    }

    /// Decision-process work: every decide call costs at least its map
    /// probe, and each recompute additionally walks its candidates. The
    /// `rib_churn` bench compares this figure against the naive model's.
    pub fn decision_work(&self) -> u64 {
        self.decide_calls + self.candidate_touches
    }
}

/// One candidate in a prefix's sorted set. `(remote, addr_key)` is the
/// sort key: local origination is `(false, 0)` and sorts first; remote
/// peers follow in ascending address order — exactly the gathering order
/// of the naive decision loop, which the `min_by` tie-break depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CandEntry {
    /// False only for the locally originated candidate.
    remote: bool,
    /// `u32::from(peer address)` (0 for local) — `u32` order equals
    /// `Ipv4Addr` order.
    addr_key: u32,
    attr: AttrId,
    ebgp: bool,
}

impl CandEntry {
    fn key(&self) -> (bool, u32) {
        (self.remote, self.addr_key)
    }
}

const LOCAL_KEY: (bool, u32) = (false, 0);

/// One route in a [`Decision`], sharing the interned attribute allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteInfo {
    /// Canonical attributes as received (or as originated).
    pub attrs: Arc<PathAttributes>,
    /// Interned id of `attrs` in the owning RIB's store.
    pub attr_id: AttrId,
    /// The peer this was learned from (`0.0.0.0` for local origination).
    pub peer: Ipv4Addr,
    /// True when learned over eBGP.
    pub ebgp: bool,
}

impl RouteInfo {
    /// True for locally originated paths.
    pub fn is_local(&self) -> bool {
        self.peer == Ipv4Addr::UNSPECIFIED
    }
}

/// Result of running the decision process for one prefix. Memoized per
/// prefix behind an `Arc` so every reader (FIB reconcile, each established
/// peer's sync) shares one computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The single best path.
    pub best: RouteInfo,
    /// The ECMP set (always contains `best`; singleton when multipath is
    /// off or nothing ties).
    pub multipath: Vec<RouteInfo>,
    /// Deduplicated, sorted next hops of the multipath set.
    pub next_hops: Vec<Ipv4Addr>,
}

/// Per-prefix decision memo slot.
#[derive(Debug, Clone, Default)]
enum Memo {
    /// Not computed since the last invalidation.
    #[default]
    Stale,
    /// Computed: no candidates survive.
    Unreachable,
    /// Computed: the memoized decision.
    Reachable(Arc<Decision>),
}

/// The RIB's prefix-id table: private per speaker, or a handle to the
/// per-run [`PrefixPool`] every speaker shares. A shared table gives the
/// whole fleet one id space — a 1000-node full mesh interns each prefix
/// once, not once per speaker — but means ids created by *other* speakers
/// can exceed this RIB's dense arenas, so every arena-indexing path must
/// treat an out-of-range id as "no local candidates".
#[derive(Debug, Clone)]
enum PrefixTable {
    Local(PrefixInterner),
    Shared(PrefixPool),
}

impl Default for PrefixTable {
    fn default() -> Self {
        PrefixTable::Local(PrefixInterner::default())
    }
}

impl PrefixTable {
    fn intern(&mut self, p: Ipv4Prefix) -> PrefixId {
        match self {
            PrefixTable::Local(t) => t.intern(p),
            PrefixTable::Shared(t) => t.intern(p),
        }
    }

    fn get(&self, p: Ipv4Prefix) -> Option<PrefixId> {
        match self {
            PrefixTable::Local(t) => t.get(p),
            PrefixTable::Shared(t) => t.get(p),
        }
    }

    fn value(&self, id: PrefixId) -> Ipv4Prefix {
        match self {
            PrefixTable::Local(t) => t.value(id),
            PrefixTable::Shared(t) => t.value(id),
        }
    }

    fn len(&self) -> usize {
        match self {
            PrefixTable::Local(t) => t.len(),
            PrefixTable::Shared(t) => t.len(),
        }
    }

    fn sort_by_value(&self, ids: &mut Vec<PrefixId>) {
        match self {
            PrefixTable::Local(t) => t.sort_by_value(ids),
            PrefixTable::Shared(t) => t.sort_by_value(ids),
        }
    }

    fn is_shared(&self) -> bool {
        matches!(self, PrefixTable::Shared(_))
    }
}

/// The speaker's RIB collection (compact-id shape).
#[derive(Debug, Clone, Default)]
pub struct LocRib {
    local_as: u16,
    multipath: bool,
    pool: AttrPool,
    /// True when `pool` is shared with other RIBs (size reporting moves to
    /// the pool owner).
    pool_shared: bool,
    /// Distinct attribute sets *this RIB* created in the pool.
    interns: Cell<u64>,
    /// Intern hits (including sets first created by other sharers).
    reuses: Cell<u64>,
    prefixes: PrefixTable,
    peers: PeerInterner,
    /// Per peer id: the prefix ids it currently contributes.
    adj_in: Vec<IdSet>,
    /// Per prefix id: candidates sorted by `(remote, addr_key)`. Empty
    /// sets stay allocated (ids are never reused); `live` tracks how many
    /// are non-empty.
    candidates: Vec<Vec<CandEntry>>,
    live: usize,
    /// Per prefix id: memoized decision. Interior mutability keeps
    /// `decide(&self)`.
    cache: RefCell<Vec<Memo>>,
    stats: RefCell<RibStats>,
}

impl LocRib {
    /// A RIB for a speaker in `local_as`, with a private attribute store.
    pub fn new(local_as: u16, multipath: bool) -> LocRib {
        LocRib {
            local_as,
            multipath,
            ..LocRib::default()
        }
    }

    /// A RIB sharing a per-run [`AttrPool`] with other speakers.
    pub fn new_shared(local_as: u16, multipath: bool, pool: AttrPool) -> LocRib {
        LocRib {
            local_as,
            multipath,
            pool,
            pool_shared: true,
            ..LocRib::default()
        }
    }

    /// A RIB sharing both per-run pools — attribute sets *and* the prefix
    /// id space — with other speakers. This is the shape the parallel pump
    /// runs: the pools are lock-light and the id tables fleet-global, so a
    /// prefix announced everywhere costs one intern, not one per speaker.
    pub fn new_shared_pools(
        local_as: u16,
        multipath: bool,
        pool: AttrPool,
        prefixes: PrefixPool,
    ) -> LocRib {
        LocRib {
            local_as,
            multipath,
            pool,
            pool_shared: true,
            prefixes: PrefixTable::Shared(prefixes),
            ..LocRib::default()
        }
    }

    /// Interns into the pool, tracking per-RIB created/reused counts.
    fn pool_intern(&self, attrs: &Arc<PathAttributes>) -> AttrId {
        let (id, created) = self.pool.intern(attrs);
        if created {
            self.interns.set(self.interns.get() + 1);
        } else {
            self.reuses.set(self.reuses.get() + 1);
        }
        id
    }

    /// Interns a prefix, growing the dense per-prefix arenas alongside the
    /// id table.
    fn intern_prefix(&mut self, p: Ipv4Prefix) -> PrefixId {
        let id = self.prefixes.intern(p);
        if id.index() >= self.candidates.len() {
            self.candidates.resize(id.index() + 1, Vec::new());
            self.cache.get_mut().resize(id.index() + 1, Memo::Stale);
        }
        id
    }

    /// Inserts/replaces a candidate, returning the previous entry at the
    /// same key and maintaining the live-prefix count.
    fn upsert_candidate(&mut self, id: PrefixId, entry: CandEntry) -> Option<CandEntry> {
        let set = &mut self.candidates[id.index()];
        match set.binary_search_by_key(&entry.key(), CandEntry::key) {
            Ok(i) => Some(std::mem::replace(&mut set[i], entry)),
            Err(i) => {
                if set.is_empty() {
                    self.live += 1;
                }
                set.insert(i, entry);
                None
            }
        }
    }

    /// Removes the candidate with `key`, maintaining the live count. Ids
    /// beyond the arenas (interned into a shared table by another speaker,
    /// never seen here) have no candidates by construction.
    fn remove_candidate_key(&mut self, id: PrefixId, key: (bool, u32)) -> bool {
        let Some(set) = self.candidates.get_mut(id.index()) else {
            return false;
        };
        match set.binary_search_by_key(&key, CandEntry::key) {
            Ok(i) => {
                set.remove(i);
                if set.is_empty() {
                    self.live -= 1;
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Originates a local network, returning the prefix's id.
    pub fn originate(&mut self, prefix: Ipv4Prefix, next_hop: Ipv4Addr) -> PrefixId {
        let attr = {
            let (id, created) = self.pool.intern_owned(PathAttributes::originated(next_hop));
            if created {
                self.interns.set(self.interns.get() + 1);
            } else {
                self.reuses.set(self.reuses.get() + 1);
            }
            id
        };
        let id = self.intern_prefix(prefix);
        self.upsert_candidate(
            id,
            CandEntry {
                remote: false,
                addr_key: 0,
                attr,
                ebgp: false,
            },
        );
        self.invalidate(id);
        id
    }

    /// Withdraws a locally originated network; `Some(id)` when a local
    /// candidate actually existed.
    pub fn withdraw_local(&mut self, prefix: Ipv4Prefix) -> Option<PrefixId> {
        let id = self.prefixes.get(prefix)?;
        if self.remove_candidate_key(id, LOCAL_KEY) {
            self.invalidate(id);
            Some(id)
        } else {
            None
        }
    }

    /// Applies an UPDATE from `peer`, returning every prefix whose
    /// candidate set changed — sorted by prefix **value** (ascending), the
    /// iteration order all downstream consumers require. Announcements
    /// whose AS_PATH contains our own AS are rejected (loop prevention) —
    /// treated as withdrawals of any previous path from that peer.
    pub fn update_from_peer(
        &mut self,
        peer: Ipv4Addr,
        ebgp: bool,
        update: &UpdateMsg,
    ) -> Vec<PrefixId> {
        self.update_from_peer_policed(peer, ebgp, update, None)
    }

    /// [`LocRib::update_from_peer`] with an optional import route-map — the
    /// single import-policy choke point. With `import: None` the behavior
    /// (and the one-intern-per-UPDATE shape) is exactly the unpoliced path.
    /// With a map, NLRI are bucketed by the first matching clause so each
    /// clause's transform is applied and interned **once per UPDATE**, not
    /// per prefix; denied prefixes (deny clause or no clause — implicit
    /// deny) are treated as withdrawals from this peer.
    pub fn update_from_peer_policed(
        &mut self,
        peer: Ipv4Addr,
        ebgp: bool,
        update: &UpdateMsg,
        import: Option<&crate::policy::RouteMap>,
    ) -> Vec<PrefixId> {
        let mut affected: Vec<PrefixId> = Vec::new();
        let peer_key = u32::from(peer);
        for p in &update.withdrawn {
            // Unknown prefixes are not interned: a withdrawal of something
            // never announced must not grow the arenas.
            if let Some(id) = self.prefixes.get(*p) {
                if self.remove_peer_candidate(id, peer, peer_key) {
                    affected.push(id);
                }
            }
        }
        if let Some(attrs) = &update.attrs {
            // Loop prevention sees the wire attributes, before any policy.
            if attrs.contains_asn(self.local_as) {
                for p in &update.nlri {
                    if let Some(id) = self.prefixes.get(*p) {
                        if self.remove_peer_candidate(id, peer, peer_key) {
                            affected.push(id);
                        }
                    }
                }
            } else {
                match import {
                    None => {
                        // One intern per UPDATE, not per prefix: every NLRI
                        // in the message shares the id (and the allocation).
                        let attr = self.pool_intern(attrs);
                        self.insert_candidates(
                            peer,
                            peer_key,
                            ebgp,
                            attr,
                            &update.nlri,
                            &mut affected,
                        );
                    }
                    Some(map) => {
                        use crate::policy::{PolicyAction, PolicyVerdict};
                        let mut denied: Vec<Ipv4Prefix> = Vec::new();
                        let mut buckets: std::collections::BTreeMap<usize, Vec<Ipv4Prefix>> =
                            std::collections::BTreeMap::new();
                        for p in &update.nlri {
                            match map.first_match(*p, attrs) {
                                Some(i) if map.clauses[i].action == PolicyAction::Permit => {
                                    buckets.entry(i).or_default().push(*p);
                                }
                                _ => denied.push(*p),
                            }
                        }
                        // A denied announce is a withdrawal from this peer
                        // (and, like one, never grows the arenas).
                        for p in denied {
                            if let Some(id) = self.prefixes.get(p) {
                                if self.remove_peer_candidate(id, peer, peer_key) {
                                    affected.push(id);
                                }
                            }
                        }
                        for (i, nlri) in buckets {
                            let attr = match map.verdict_of(i, attrs, self.local_as) {
                                PolicyVerdict::Permit(None) => self.pool_intern(attrs),
                                PolicyVerdict::Permit(Some(out)) => self.intern_attrs(out),
                                PolicyVerdict::Deny => unreachable!("bucketed permit clause"),
                            };
                            self.insert_candidates(
                                peer,
                                peer_key,
                                ebgp,
                                attr,
                                &nlri,
                                &mut affected,
                            );
                        }
                    }
                }
            }
        }
        self.prefixes.sort_by_value(&mut affected);
        affected
    }

    /// Removes every route learned from `peer` (session down), returning
    /// the affected prefix ids sorted by value.
    pub fn drop_peer(&mut self, peer: Ipv4Addr) -> Vec<PrefixId> {
        let Some(pid) = self.peers.get(peer) else {
            return Vec::new();
        };
        if pid.index() >= self.adj_in.len() {
            return Vec::new();
        }
        let peer_key = u32::from(peer);
        let mut affected: Vec<PrefixId> = self.adj_in[pid.index()].iter().map(PrefixId).collect();
        self.adj_in[pid.index()].clear();
        for &id in &affected {
            self.remove_candidate_key(id, (true, peer_key));
            self.invalidate(id);
        }
        self.prefixes.sort_by_value(&mut affected);
        affected
    }

    /// Installs one interned attribute set as `peer`'s candidate for each
    /// prefix in `nlri`, maintaining the Adj-RIB-In index and pushing
    /// changed ids onto `affected`.
    fn insert_candidates(
        &mut self,
        peer: Ipv4Addr,
        peer_key: u32,
        ebgp: bool,
        attr: AttrId,
        nlri: &[Ipv4Prefix],
        affected: &mut Vec<PrefixId>,
    ) {
        let pid = self.peers.intern(peer);
        if pid.index() >= self.adj_in.len() {
            self.adj_in.resize(pid.index() + 1, IdSet::new());
        }
        let entry = CandEntry {
            remote: true,
            addr_key: peer_key,
            attr,
            ebgp,
        };
        for p in nlri {
            let id = self.intern_prefix(*p);
            let prev = self.upsert_candidate(id, entry);
            self.adj_in[pid.index()].insert(id.0);
            if prev != Some(entry) {
                affected.push(id);
                self.invalidate(id);
            }
        }
    }

    /// Drops `peer`'s candidate for one prefix, maintaining both indexes.
    /// Returns true when a candidate actually existed.
    fn remove_peer_candidate(&mut self, id: PrefixId, peer: Ipv4Addr, peer_key: u32) -> bool {
        if !self.remove_candidate_key(id, (true, peer_key)) {
            return false;
        }
        if let Some(pid) = self.peers.get(peer) {
            if pid.index() < self.adj_in.len() {
                self.adj_in[pid.index()].remove(id.0);
            }
        }
        self.invalidate(id);
        true
    }

    fn invalidate(&mut self, id: PrefixId) {
        let slot = &mut self.cache.get_mut()[id.index()];
        if !matches!(slot, Memo::Stale) {
            *slot = Memo::Stale;
            self.stats.get_mut().invalidations += 1;
        }
    }

    /// Number of paths in a peer's Adj-RIB-In.
    pub fn adj_in_len(&self, peer: Ipv4Addr) -> usize {
        self.peers
            .get(peer)
            .and_then(|pid| self.adj_in.get(pid.index()))
            .map_or(0, IdSet::len)
    }

    /// Every prefix with at least one candidate path, as values (a read of
    /// the persistent candidate arena, not a union rebuild).
    pub fn prefixes(&self) -> BTreeSet<Ipv4Prefix> {
        self.live_prefix_ids()
            .into_iter()
            .map(|id| self.prefixes.value(id))
            .collect()
    }

    /// Every live prefix id, sorted by prefix value — the order the
    /// speaker's newly-established-peer sync iterates in.
    pub fn live_prefix_ids(&self) -> Vec<PrefixId> {
        let mut ids: Vec<PrefixId> = (0..self.candidates.len() as u32)
            .map(PrefixId)
            .filter(|id| !self.candidates[id.index()].is_empty())
            .collect();
        // One sort_by_value call instead of a per-comparison sort_key
        // probe: against a shared table that is one lock, not O(n log n).
        self.prefixes.sort_by_value(&mut ids);
        ids
    }

    /// Number of live prefixes.
    pub fn prefix_count(&self) -> usize {
        self.live
    }

    /// The id of a prefix, if it was ever announced or originated here.
    pub fn prefix_id(&self, prefix: Ipv4Prefix) -> Option<PrefixId> {
        self.prefixes.get(prefix)
    }

    /// The prefix value behind an id.
    pub fn prefix_value(&self, id: PrefixId) -> Ipv4Prefix {
        self.prefixes.value(id)
    }

    /// Sorts (and dedups) prefix ids into ascending value order.
    pub fn sort_ids_by_value(&self, ids: &mut Vec<PrefixId>) {
        self.prefixes.sort_by_value(ids);
    }

    /// `(prefix table size, peer table size)` — interner footprints for
    /// the `mem_*` report counters. Monotone, so also the peaks.
    pub fn interner_sizes(&self) -> (usize, usize) {
        // A shared prefix table is reported once by its owner (the control
        // plane), not by every sharer — mirroring `attr_store_size`.
        let prefixes = if self.prefixes.is_shared() {
            0
        } else {
            self.prefixes.len()
        };
        (prefixes, self.peers.len())
    }

    /// The (possibly shared) attribute pool.
    pub fn attr_pool(&self) -> &AttrPool {
        &self.pool
    }

    /// Interns an owned attribute set in this RIB's pool (the speaker's
    /// export path uses this so Adj-RIB-Out entries are ids too).
    pub fn intern_attrs(&self, attrs: PathAttributes) -> AttrId {
        let (id, created) = self.pool.intern_owned(attrs);
        if created {
            self.interns.set(self.interns.get() + 1);
        } else {
            self.reuses.set(self.reuses.get() + 1);
        }
        id
    }

    /// The canonical shared attributes for an id (owned handle — the pool
    /// lock cannot be held across the call boundary).
    pub fn attrs_of(&self, id: AttrId) -> Arc<PathAttributes> {
        self.pool.attrs(id)
    }

    /// Just the decision-process counters `(decide_calls,
    /// decide_cache_hits)` — the subset trace instrumentation diffs around
    /// every `reconcile`. Much cheaper than [`LocRib::stats`], which also
    /// assembles the attribute-store figures.
    pub fn decide_counters(&self) -> (u64, u64) {
        let s = self.stats.borrow();
        (s.decide_calls, s.decide_cache_hits)
    }

    /// Snapshot of the work counters (attr-store figures filled in here).
    pub fn stats(&self) -> RibStats {
        let mut s = *self.stats.borrow();
        s.attr_interns = self.interns.get();
        s.attr_reuses = self.reuses.get();
        // A shared pool's size is reported once by its owner, not by every
        // sharer (merged stats would multiply-count it).
        s.attr_store_size = if self.pool_shared {
            0
        } else {
            self.pool.len() as u64
        };
        s
    }

    /// Runs the decision process for `prefix`, memoized until a mutation
    /// touches the prefix.
    pub fn decide(&self, prefix: Ipv4Prefix) -> Option<Arc<Decision>> {
        match self.prefixes.get(prefix) {
            Some(id) => self.decide_id(id),
            None => {
                // Never-interned prefixes cannot have candidates; answer
                // without touching (or growing) the arenas. Counted as a
                // cache hit: the read is O(1) and runs no ranking.
                let mut stats = self.stats.borrow_mut();
                stats.decide_calls += 1;
                stats.decide_cache_hits += 1;
                None
            }
        }
    }

    /// [`LocRib::decide`] by prefix id — the speaker's hot path (no hash
    /// probe at all).
    pub fn decide_id(&self, id: PrefixId) -> Option<Arc<Decision>> {
        {
            let mut stats = self.stats.borrow_mut();
            stats.decide_calls += 1;
            if id.index() >= self.candidates.len() {
                // A shared-table id this RIB never interned: no arena slot
                // means no candidates. Answered without growing the arenas,
                // counted like the never-interned case in `decide`.
                stats.decide_cache_hits += 1;
                return None;
            }
            match &self.cache.borrow()[id.index()] {
                Memo::Stale => stats.decide_recomputes += 1,
                Memo::Unreachable => {
                    stats.decide_cache_hits += 1;
                    return None;
                }
                Memo::Reachable(d) => {
                    stats.decide_cache_hits += 1;
                    return Some(Arc::clone(d));
                }
            }
        }
        let decision = self.compute(id);
        self.cache.borrow_mut()[id.index()] = match &decision {
            None => Memo::Unreachable,
            Some(d) => Memo::Reachable(Arc::clone(d)),
        };
        decision
    }

    /// The uncached decision process: rank the prefix's candidate set.
    fn compute(&self, id: PrefixId) -> Option<Arc<Decision>> {
        let cands = &self.candidates[id.index()];
        if cands.is_empty() {
            return None;
        }
        self.stats.borrow_mut().candidate_touches += cands.len() as u64;
        let store = self.pool.read();
        // Iteration order is (local, peer-address) — the naive gathering
        // order — and `min_by` keeps the earliest of rank-equal candidates,
        // so step 7 (lowest peer address) falls out for free.
        let best = cands
            .iter()
            .min_by(|a, b| rank(&store, a, b))
            .expect("non-empty");
        let members: Vec<&CandEntry> = if self.multipath {
            cands
                .iter()
                .filter(|c| rank(&store, c, best) == std::cmp::Ordering::Equal)
                .collect()
        } else {
            vec![best]
        };
        let route = |cand: &CandEntry| RouteInfo {
            attrs: Arc::clone(store.attrs(cand.attr)),
            attr_id: cand.attr,
            peer: Ipv4Addr::from(cand.addr_key),
            ebgp: cand.ebgp,
        };
        let mut next_hops: Vec<Ipv4Addr> = members
            .iter()
            .map(|c| store.attrs(c.attr).next_hop)
            .collect();
        next_hops.sort();
        next_hops.dedup();
        Some(Arc::new(Decision {
            best: route(best),
            multipath: members.into_iter().map(route).collect(),
            next_hops,
        }))
    }

    /// The effective next-hop set for a prefix after the decision process:
    /// the deduplicated next hops of the multipath set. Empty when the
    /// prefix is unreachable; `None` inner addresses never appear. Locally
    /// originated prefixes return their own next hop.
    pub fn next_hops(&self, prefix: Ipv4Prefix) -> Vec<Ipv4Addr> {
        self.decide(prefix)
            .map(|d| d.next_hops.clone())
            .unwrap_or_default()
    }
}

/// Total ordering used by the decision process; `Less` is better. Steps
/// 1–6 define multipath equality; step 7 (peer address) only breaks the
/// final tie for the single best path and is excluded from `rank` — the
/// caller treats `Equal` as "same up to multipath" and `min_by` keeps the
/// earliest candidate (set order is local, then peer address).
fn rank(store: &AttrStore, a: &CandEntry, b: &CandEntry) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let am = store.meta(a.attr);
    let bm = store.meta(b.attr);
    // 1. Higher local-pref wins.
    let o = bm.local_pref.cmp(&am.local_pref);
    if o != Ordering::Equal {
        return o;
    }
    // 2. Local origination wins (`!remote` is "is local").
    let o = a.remote.cmp(&b.remote);
    if o != Ordering::Equal {
        return o;
    }
    // 3. Shorter AS path wins.
    let o = am.path_len.cmp(&bm.path_len);
    if o != Ordering::Equal {
        return o;
    }
    // 4. Lower origin wins.
    let o = am.origin_rank.cmp(&bm.origin_rank);
    if o != Ordering::Equal {
        return o;
    }
    // 5. Lower MED wins, only between the same neighbor AS.
    if am.neighbor_as.is_some() && am.neighbor_as == bm.neighbor_as {
        let o = am.med.cmp(&bm.med);
        if o != Ordering::Equal {
            return o;
        }
    }
    // 6. eBGP beats iBGP.
    b.ebgp.cmp(&a.ebgp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::AsPathSegment;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn attrs(path: &[u16], next_hop: [u8; 4]) -> PathAttributes {
        PathAttributes {
            origin: Origin::Igp,
            as_path: vec![AsPathSegment::Sequence(path.to_vec())],
            next_hop: Ipv4Addr::from(next_hop),
            med: None,
            local_pref: None,
            communities: vec![],
            unknown: vec![],
        }
    }

    fn announce(rib: &mut LocRib, peer: [u8; 4], path: &[u16], prefix: &str) {
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(attrs(path, peer))),
            nlri: vec![pfx(prefix)],
        };
        rib.update_from_peer(Ipv4Addr::from(peer), true, &u);
    }

    #[test]
    fn shortest_as_path_wins() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2, 3], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[4, 5], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn equal_length_paths_form_multipath() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[3, 4], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 3], &[5, 6, 7], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.multipath.len(), 2, "two 2-hop paths tie");
        let hops = rib.next_hops(pfx("10.9.0.0/16"));
        assert_eq!(
            hops,
            vec![Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)]
        );
    }

    #[test]
    fn multipath_disabled_gives_singleton() {
        let mut rib = LocRib::new(65000, false);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[3, 4], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.multipath.len(), 1);
        assert_eq!(rib.next_hops(pfx("10.9.0.0/16")).len(), 1);
    }

    #[test]
    fn local_pref_dominates_path_length() {
        let mut rib = LocRib::new(65000, true);
        let mut long = attrs(&[1, 2, 3, 4], [10, 0, 0, 1]);
        long.local_pref = Some(200);
        rib.update_from_peer(
            Ipv4Addr::new(10, 0, 0, 1),
            true,
            &UpdateMsg {
                withdrawn: vec![],
                attrs: Some(Arc::new(long)),
                nlri: vec![pfx("10.9.0.0/16")],
            },
        );
        announce(&mut rib, [10, 0, 0, 2], &[9], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn local_origination_beats_learned() {
        let mut rib = LocRib::new(65000, true);
        rib.originate(pfx("10.9.0.0/16"), Ipv4Addr::new(10, 0, 0, 99));
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert!(d.best.is_local());
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn origin_rank_breaks_ties() {
        let mut rib = LocRib::new(65000, true);
        let mut egp = attrs(&[1], [10, 0, 0, 1]);
        egp.origin = Origin::Egp;
        rib.update_from_peer(
            Ipv4Addr::new(10, 0, 0, 1),
            true,
            &UpdateMsg {
                withdrawn: vec![],
                attrs: Some(Arc::new(egp)),
                nlri: vec![pfx("10.9.0.0/16")],
            },
        );
        announce(&mut rib, [10, 0, 0, 2], &[2], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 2), "IGP beats EGP");
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn med_compared_within_same_neighbor_as() {
        let mut rib = LocRib::new(65000, true);
        let mut m10 = attrs(&[7], [10, 0, 0, 1]);
        m10.med = Some(10);
        let mut m5 = attrs(&[7], [10, 0, 0, 2]);
        m5.med = Some(5);
        for (peer, a) in [([10, 0, 0, 1], m10), ([10, 0, 0, 2], m5)] {
            rib.update_from_peer(
                Ipv4Addr::from(peer),
                true,
                &UpdateMsg {
                    withdrawn: vec![],
                    attrs: Some(Arc::new(a)),
                    nlri: vec![pfx("10.9.0.0/16")],
                },
            );
        }
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 2), "lower MED");
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn med_ignored_across_different_neighbor_as() {
        let mut rib = LocRib::new(65000, true);
        let mut m10 = attrs(&[7], [10, 0, 0, 1]);
        m10.med = Some(10);
        let mut m5 = attrs(&[8], [10, 0, 0, 2]);
        m5.med = Some(5);
        for (peer, a) in [([10, 0, 0, 1], m10), ([10, 0, 0, 2], m5)] {
            rib.update_from_peer(
                Ipv4Addr::from(peer),
                true,
                &UpdateMsg {
                    withdrawn: vec![],
                    attrs: Some(Arc::new(a)),
                    nlri: vec![pfx("10.9.0.0/16")],
                },
            );
        }
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.multipath.len(), 2, "MED not comparable → still tie");
    }

    #[test]
    fn loop_prevention_rejects_own_as() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 65000, 2], "10.9.0.0/16");
        assert!(rib.decide(pfx("10.9.0.0/16")).is_none());
    }

    #[test]
    fn looped_announcement_withdraws_previous() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        assert!(rib.decide(pfx("10.9.0.0/16")).is_some());
        let affected = {
            let u = UpdateMsg {
                withdrawn: vec![],
                attrs: Some(Arc::new(attrs(&[1, 65000], [10, 0, 0, 1]))),
                nlri: vec![pfx("10.9.0.0/16")],
            };
            rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u)
        };
        let values: Vec<Ipv4Prefix> = affected.iter().map(|&i| rib.prefix_value(i)).collect();
        assert_eq!(values, vec![pfx("10.9.0.0/16")]);
        assert!(rib.decide(pfx("10.9.0.0/16")).is_none());
    }

    #[test]
    fn withdraw_removes_path() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let u = UpdateMsg {
            withdrawn: vec![pfx("10.9.0.0/16")],
            attrs: None,
            nlri: vec![],
        };
        let affected = rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u);
        assert_eq!(affected.len(), 1);
        assert!(rib.decide(pfx("10.9.0.0/16")).is_none());
        assert!(rib.next_hops(pfx("10.9.0.0/16")).is_empty());
    }

    #[test]
    fn withdraw_of_unknown_prefix_does_not_intern() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let u = UpdateMsg {
            withdrawn: vec![pfx("10.77.0.0/16")],
            attrs: None,
            nlri: vec![],
        };
        let affected = rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u);
        assert!(affected.is_empty());
        assert_eq!(
            rib.interner_sizes().0,
            1,
            "only the announced prefix is in the table"
        );
        assert!(rib.prefix_id(pfx("10.77.0.0/16")).is_none());
    }

    #[test]
    fn redundant_update_reports_no_change() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(attrs(&[1], [10, 0, 0, 1]))),
            nlri: vec![pfx("10.9.0.0/16")],
        };
        let affected = rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u);
        assert!(affected.is_empty(), "identical re-announcement is a no-op");
    }

    #[test]
    fn drop_peer_flushes_its_routes() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.1.0.0/16");
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.2.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[2], "10.1.0.0/16");
        let affected = rib.drop_peer(Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(affected.len(), 2);
        // 10.1/16 still reachable via the other peer.
        assert_eq!(rib.next_hops(pfx("10.1.0.0/16")).len(), 1);
        assert!(rib.next_hops(pfx("10.2.0.0/16")).is_empty());
        assert_eq!(rib.adj_in_len(Ipv4Addr::new(10, 0, 0, 1)), 0);
        assert_eq!(rib.adj_in_len(Ipv4Addr::new(10, 0, 0, 2)), 1);
    }

    #[test]
    fn affected_sets_are_value_sorted_not_id_sorted() {
        let mut rib = LocRib::new(65000, true);
        // Intern in descending value order so id order ≠ value order.
        let shared = Arc::new(attrs(&[1], [10, 0, 0, 1]));
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::clone(&shared)),
            nlri: vec![pfx("10.3.0.0/16"), pfx("10.1.0.0/16"), pfx("10.2.0.0/16")],
        };
        let affected = rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u);
        let values: Vec<Ipv4Prefix> = affected.iter().map(|&i| rib.prefix_value(i)).collect();
        assert_eq!(
            values,
            vec![pfx("10.1.0.0/16"), pfx("10.2.0.0/16"), pfx("10.3.0.0/16")],
            "affected ids sort by prefix value"
        );
        let live = rib.live_prefix_ids();
        let live_vals: Vec<Ipv4Prefix> = live.iter().map(|&i| rib.prefix_value(i)).collect();
        assert_eq!(live_vals, values, "live index is value-ordered too");
        let dropped = rib.drop_peer(Ipv4Addr::new(10, 0, 0, 1));
        let drop_vals: Vec<Ipv4Prefix> = dropped.iter().map(|&i| rib.prefix_value(i)).collect();
        assert_eq!(drop_vals, values);
    }

    #[test]
    fn prefixes_lists_union() {
        let mut rib = LocRib::new(65000, true);
        rib.originate(pfx("10.0.0.0/24"), Ipv4Addr::new(10, 0, 0, 1));
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.1.0.0/16");
        let ps = rib.prefixes();
        assert!(ps.contains(&pfx("10.0.0.0/24")));
        assert!(ps.contains(&pfx("10.1.0.0/16")));
        assert_eq!(ps.len(), 2);
        assert_eq!(rib.prefix_count(), 2);
    }

    #[test]
    fn identical_attr_sets_share_one_interned_entry() {
        let mut rib = LocRib::new(65000, true);
        // Same attrs announced for many prefixes by one peer, and the same
        // logical attrs (fresh allocation) by another.
        let shared = Arc::new(attrs(&[1, 2], [10, 0, 0, 1]));
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::clone(&shared)),
            nlri: vec![pfx("10.1.0.0/16"), pfx("10.2.0.0/16"), pfx("10.3.0.0/16")],
        };
        rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u);
        let u2 = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(attrs(&[1, 2], [10, 0, 0, 1]))),
            nlri: vec![pfx("10.4.0.0/16")],
        };
        rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 2), true, &u2);
        let s = rib.stats();
        assert_eq!(s.attr_store_size, 1, "one distinct attribute set");
        assert_eq!(s.attr_interns, 1);
        assert_eq!(s.attr_reuses, 1, "second UPDATE reused the entry");
        let d1 = rib.decide(pfx("10.1.0.0/16")).unwrap();
        let d4 = rib.decide(pfx("10.4.0.0/16")).unwrap();
        assert!(
            Arc::ptr_eq(&d1.best.attrs, &d4.best.attrs),
            "decisions share the canonical allocation"
        );
        assert_eq!(d1.best.attr_id, d4.best.attr_id);
    }

    #[test]
    fn shared_pool_interns_once_across_ribs() {
        let pool = AttrPool::new();
        let mut r1 = LocRib::new_shared(65001, true, pool.clone());
        let mut r2 = LocRib::new_shared(65002, true, pool.clone());
        // Same peer address (hence same next-hop and identical attrs) seen
        // by both RIBs, as a route reflected through a shared neighbor is.
        announce(&mut r1, [10, 0, 0, 1], &[7, 8], "10.1.0.0/16");
        announce(&mut r2, [10, 0, 0, 1], &[7, 8], "10.2.0.0/16");
        assert_eq!(pool.len(), 1, "one fleet-wide entry for identical attrs");
        let s1 = r1.stats();
        let s2 = r2.stats();
        assert_eq!(s1.attr_interns, 1, "r1 created it");
        assert_eq!(s2.attr_interns, 0);
        assert_eq!(s2.attr_reuses, 1, "r2's intern was a fleet-wide reuse");
        assert_eq!(
            s1.attr_store_size + s2.attr_store_size,
            0,
            "sharers report 0 size; the pool owner reports it once"
        );
        // Decisions in both RIBs share the one canonical allocation.
        let d1 = r1.decide(pfx("10.1.0.0/16")).unwrap();
        let d2 = r2.decide(pfx("10.2.0.0/16")).unwrap();
        assert!(Arc::ptr_eq(&d1.best.attrs, &d2.best.attrs));
        assert!(r1.attr_pool().same_as(r2.attr_pool()));
        assert!(pool.bytes_estimate() > 0);
    }

    #[test]
    fn decide_is_memoized_until_invalidated() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[3, 4], "10.9.0.0/16");
        let p = pfx("10.9.0.0/16");
        let d1 = rib.decide(p).unwrap();
        let d2 = rib.decide(p).unwrap();
        assert!(Arc::ptr_eq(&d1, &d2), "second read hits the cache");
        let s = rib.stats();
        assert_eq!(s.decide_calls, 2);
        assert_eq!(s.decide_recomputes, 1);
        assert_eq!(s.decide_cache_hits, 1);
        assert_eq!(s.candidate_touches, 2, "one recompute over two candidates");
        // A mutation touching the prefix invalidates the memo.
        announce(&mut rib, [10, 0, 0, 3], &[9], "10.9.0.0/16");
        let d3 = rib.decide(p).unwrap();
        assert!(!Arc::ptr_eq(&d1, &d3));
        let s = rib.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.decide_recomputes, 2);
        // Never-interned prefixes are answered in O(1) without growing the
        // arenas; both reads count as cache hits (no ranking runs).
        let other = pfx("10.250.0.0/16");
        assert!(rib.decide(other).is_none());
        assert!(rib.decide(other).is_none());
        let s = rib.stats();
        assert_eq!(s.decide_cache_hits, 3);
        assert_eq!(s.decide_recomputes, 2, "no recompute for unknown prefixes");
        // A withdrawn (known, empty) prefix memoizes unreachability.
        let u = UpdateMsg {
            withdrawn: vec![p],
            attrs: None,
            nlri: vec![],
        };
        rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u);
        rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 2), true, &u);
        rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 3), true, &u);
        assert!(rib.decide(p).is_none(), "recomputes the empty set");
        assert!(rib.decide(p).is_none(), "second read hits the memo");
        let s = rib.stats();
        assert_eq!(s.decide_recomputes, 3);
        assert_eq!(s.decide_cache_hits, 4);
    }

    #[test]
    fn redundant_update_keeps_memo() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let p = pfx("10.9.0.0/16");
        let d1 = rib.decide(p).unwrap();
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let d2 = rib.decide(p).unwrap();
        assert!(
            Arc::ptr_eq(&d1, &d2),
            "identical re-announcement must not invalidate"
        );
        assert_eq!(rib.stats().invalidations, 0);
    }
}

//! Routing Information Bases and the decision process.
//!
//! One [`LocRib`] per speaker holds the per-peer Adj-RIB-In plus locally
//! originated routes, and answers "what is the best path (and the ECMP
//! multipath set) for this prefix?" following the RFC 4271 §9.1 ranking:
//!
//! 1. highest LOCAL_PREF (default 100),
//! 2. locally originated beats learned,
//! 3. shortest AS_PATH,
//! 4. lowest ORIGIN (IGP < EGP < INCOMPLETE),
//! 5. lowest MED (compared only between routes from the same neighbor AS),
//! 6. eBGP beats iBGP,
//! 7. lowest peer address (router-id proxy) as the final tie-break.
//!
//! With multipath enabled, every candidate equal to the best through step 6
//! joins the multipath set — the relaxation real routers call
//! `maximum-paths`, which the demo's "BGP + ECMP" traffic engineering
//! requires on the fat-tree.
//!
//! ## Route-churn fast path
//!
//! Fat-tree convergence produces thousands of routes but only a handful of
//! distinct attribute sets, and the speaker reads each decision many times
//! (once for the FIB, once per established peer). Three structures keep the
//! per-UPDATE cost sub-linear in table size (the BIRD/FRR design):
//!
//! * [`AttrStore`] hash-conses [`PathAttributes`] into `Arc`-backed
//!   canonical entries with stable [`AttrId`]s: adj-in, adj-out and UPDATE
//!   construction share one allocation per distinct attribute set, and
//!   equality is an id compare instead of a deep walk. Ranking inputs
//!   (local-pref, path length, origin rank, MED, neighbor AS) are
//!   precomputed once at intern time.
//! * An inverted candidate index `prefix → {(peer, AttrId, ebgp)}` replaces
//!   the per-peer probe loop: `decide` walks exactly the candidates for one
//!   prefix, and the index is maintained incrementally by
//!   [`LocRib::update_from_peer`] / [`LocRib::drop_peer`].
//! * A per-prefix memoized [`Decision`] cache (best, multipath, next hops)
//!   is invalidated by the affected-set of each mutation, so repeated reads
//!   of an unchanged decision are O(log P) map hits.
//!
//! The naive pre-index implementation survives as [`crate::naive`], the
//! reference model for differential tests and the `rib_churn` bench.

use crate::msg::{Origin, PathAttributes, UpdateMsg};
use horse_net::addr::Ipv4Prefix;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Stable identifier of an interned attribute set inside one [`AttrStore`].
///
/// Ids are assigned in first-intern order, so equal event sequences produce
/// equal ids — they are deterministic and never reused or compacted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(u32);

impl AttrId {
    /// The raw index (observability/debug output).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// One interned attribute set plus its precomputed ranking inputs.
#[derive(Debug, Clone)]
struct AttrMeta {
    attrs: Arc<PathAttributes>,
    local_pref: u32,
    path_len: u32,
    origin_rank: u8,
    med: u32,
    neighbor_as: Option<u16>,
}

/// Hash-consing store for [`PathAttributes`].
///
/// `intern` returns the id of the canonical entry, creating one only for a
/// never-seen attribute set. The map is keyed by the `Arc` (hashing the
/// inner value), so lookups by borrowed `PathAttributes` never allocate.
#[derive(Debug, Clone, Default)]
pub struct AttrStore {
    ids: HashMap<Arc<PathAttributes>, AttrId>,
    metas: Vec<AttrMeta>,
    /// Distinct sets created (cache misses).
    interns: u64,
    /// Deep clones avoided (cache hits).
    reuses: u64,
}

impl AttrStore {
    /// Interns a shared attribute set, reusing the caller's allocation on a
    /// miss.
    pub fn intern(&mut self, attrs: &Arc<PathAttributes>) -> AttrId {
        if let Some(id) = self.ids.get(&**attrs) {
            self.reuses += 1;
            return *id;
        }
        self.insert_new(Arc::clone(attrs))
    }

    /// Interns an owned attribute set (allocates the `Arc` only on a miss).
    pub fn intern_owned(&mut self, attrs: PathAttributes) -> AttrId {
        if let Some(id) = self.ids.get(&attrs) {
            self.reuses += 1;
            return *id;
        }
        self.insert_new(Arc::new(attrs))
    }

    fn insert_new(&mut self, attrs: Arc<PathAttributes>) -> AttrId {
        let id = AttrId(self.metas.len() as u32);
        self.interns += 1;
        let meta = AttrMeta {
            local_pref: attrs.local_pref.unwrap_or(100),
            path_len: attrs.as_path_len() as u32,
            origin_rank: match attrs.origin {
                Origin::Igp => 0,
                Origin::Egp => 1,
                Origin::Incomplete => 2,
            },
            med: attrs.med.unwrap_or(0),
            neighbor_as: attrs.neighbor_as(),
            attrs: Arc::clone(&attrs),
        };
        self.ids.insert(attrs, id);
        self.metas.push(meta);
        id
    }

    /// The canonical shared attributes for an id.
    pub fn attrs(&self, id: AttrId) -> &Arc<PathAttributes> {
        &self.metas[id.0 as usize].attrs
    }

    /// Number of distinct attribute sets interned so far (monotone — this
    /// *is* the peak size).
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    fn meta(&self, id: AttrId) -> &AttrMeta {
        &self.metas[id.0 as usize]
    }
}

/// Work/effectiveness counters for the indexed RIB (and the speaker's
/// export cache, merged in by [`crate::speaker::BgpSpeaker::rib_stats`]).
///
/// All counters are cost observability only: they never feed back into
/// routing decisions or wire output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RibStats {
    /// Decision-process invocations (cache hits included).
    pub decide_calls: u64,
    /// Calls answered from the memoized decision cache.
    pub decide_cache_hits: u64,
    /// Calls that ran the ranking over the candidate set.
    pub decide_recomputes: u64,
    /// Cached decisions dropped by mutations.
    pub invalidations: u64,
    /// Candidates examined across all recomputes.
    pub candidate_touches: u64,
    /// Distinct attribute sets created in the store.
    pub attr_interns: u64,
    /// Attribute-set intern hits (deep clones avoided).
    pub attr_reuses: u64,
    /// Attribute-store size (monotone, so also the peak).
    pub attr_store_size: u64,
    /// Export-policy results served from the per-peer cache.
    pub export_cache_hits: u64,
    /// Export-policy computations (cache misses).
    pub export_cache_misses: u64,
}

impl RibStats {
    /// Accumulates `other` (store sizes add — aggregated over speakers the
    /// sum is the fleet-wide distinct-attribute footprint).
    pub fn merge(&mut self, other: &RibStats) {
        self.decide_calls += other.decide_calls;
        self.decide_cache_hits += other.decide_cache_hits;
        self.decide_recomputes += other.decide_recomputes;
        self.invalidations += other.invalidations;
        self.candidate_touches += other.candidate_touches;
        self.attr_interns += other.attr_interns;
        self.attr_reuses += other.attr_reuses;
        self.attr_store_size += other.attr_store_size;
        self.export_cache_hits += other.export_cache_hits;
        self.export_cache_misses += other.export_cache_misses;
    }

    /// Decision-process work: every decide call costs at least its map
    /// probe, and each recompute additionally walks its candidates. The
    /// `rib_churn` bench compares this figure against the naive model's.
    pub fn decision_work(&self) -> u64 {
        self.decide_calls + self.candidate_touches
    }
}

/// One candidate in the per-prefix index: who announced it and with what
/// (interned) attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cand {
    attr: AttrId,
    ebgp: bool,
}

/// Candidate key: `(remote, peer address)`. Local origination is
/// `(false, 0.0.0.0)` and sorts first; remote peers follow in ascending
/// address order — exactly the gathering order of the naive decision loop,
/// which the `min_by` tie-break depends on.
type CandKey = (bool, Ipv4Addr);

const LOCAL_KEY: CandKey = (false, Ipv4Addr::UNSPECIFIED);

/// One route in a [`Decision`], sharing the interned attribute allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteInfo {
    /// Canonical attributes as received (or as originated).
    pub attrs: Arc<PathAttributes>,
    /// Interned id of `attrs` in the owning RIB's store.
    pub attr_id: AttrId,
    /// The peer this was learned from (`0.0.0.0` for local origination).
    pub peer: Ipv4Addr,
    /// True when learned over eBGP.
    pub ebgp: bool,
}

impl RouteInfo {
    /// True for locally originated paths.
    pub fn is_local(&self) -> bool {
        self.peer == Ipv4Addr::UNSPECIFIED
    }
}

/// Result of running the decision process for one prefix. Memoized per
/// prefix behind an `Arc` so every reader (FIB reconcile, each established
/// peer's sync) shares one computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The single best path.
    pub best: RouteInfo,
    /// The ECMP set (always contains `best`; singleton when multipath is
    /// off or nothing ties).
    pub multipath: Vec<RouteInfo>,
    /// Deduplicated, sorted next hops of the multipath set.
    pub next_hops: Vec<Ipv4Addr>,
}

/// The speaker's RIB collection.
#[derive(Debug, Clone, Default)]
pub struct LocRib {
    local_as: u16,
    multipath: bool,
    store: AttrStore,
    /// Per peer: the prefixes it currently contributes (the candidate data
    /// itself lives in `candidates`).
    adj_in: BTreeMap<Ipv4Addr, BTreeSet<Ipv4Prefix>>,
    /// The inverted candidate index. Entries with no candidates are
    /// removed, so the key set is exactly the live prefix set.
    candidates: BTreeMap<Ipv4Prefix, BTreeMap<CandKey, Cand>>,
    /// Memoized decisions; an absent entry means "not computed since the
    /// last invalidation". Interior mutability keeps `decide(&self)`.
    cache: RefCell<BTreeMap<Ipv4Prefix, Option<Arc<Decision>>>>,
    stats: RefCell<RibStats>,
}

impl LocRib {
    /// A RIB for a speaker in `local_as`.
    pub fn new(local_as: u16, multipath: bool) -> LocRib {
        LocRib {
            local_as,
            multipath,
            ..LocRib::default()
        }
    }

    /// Originates a local network.
    pub fn originate(&mut self, prefix: Ipv4Prefix, next_hop: Ipv4Addr) {
        let attr = self
            .store
            .intern_owned(PathAttributes::originated(next_hop));
        self.candidates
            .entry(prefix)
            .or_default()
            .insert(LOCAL_KEY, Cand { attr, ebgp: false });
        self.invalidate(prefix);
    }

    /// Withdraws a locally originated network.
    pub fn withdraw_local(&mut self, prefix: Ipv4Prefix) -> bool {
        let removed = match self.candidates.get_mut(&prefix) {
            Some(set) => {
                let removed = set.remove(&LOCAL_KEY).is_some();
                if set.is_empty() {
                    self.candidates.remove(&prefix);
                }
                removed
            }
            None => false,
        };
        if removed {
            self.invalidate(prefix);
        }
        removed
    }

    /// Applies an UPDATE from `peer`, returning every prefix whose candidate
    /// set changed. Announcements whose AS_PATH contains our own AS are
    /// rejected (loop prevention) — treated as withdrawals of any previous
    /// path from that peer.
    pub fn update_from_peer(
        &mut self,
        peer: Ipv4Addr,
        ebgp: bool,
        update: &UpdateMsg,
    ) -> BTreeSet<Ipv4Prefix> {
        let mut affected = BTreeSet::new();
        for p in &update.withdrawn {
            if self.remove_candidate(peer, *p) {
                affected.insert(*p);
            }
        }
        if let Some(attrs) = &update.attrs {
            let looped = attrs.contains_asn(self.local_as);
            // One intern per UPDATE, not per prefix: every NLRI in the
            // message shares the id (and the allocation).
            let cand = if looped {
                None
            } else {
                Some(Cand {
                    attr: self.store.intern(attrs),
                    ebgp,
                })
            };
            for p in &update.nlri {
                match cand {
                    None => {
                        if self.remove_candidate(peer, *p) {
                            affected.insert(*p);
                        }
                    }
                    Some(cand) => {
                        let prev = self
                            .candidates
                            .entry(*p)
                            .or_default()
                            .insert((true, peer), cand);
                        self.adj_in.entry(peer).or_default().insert(*p);
                        if prev != Some(cand) {
                            affected.insert(*p);
                            self.invalidate(*p);
                        }
                    }
                }
            }
        }
        affected
    }

    /// Removes every route learned from `peer` (session down), returning the
    /// affected prefixes.
    pub fn drop_peer(&mut self, peer: Ipv4Addr) -> BTreeSet<Ipv4Prefix> {
        let prefixes = self.adj_in.remove(&peer).unwrap_or_default();
        for p in &prefixes {
            if let Some(set) = self.candidates.get_mut(p) {
                set.remove(&(true, peer));
                if set.is_empty() {
                    self.candidates.remove(p);
                }
            }
            self.invalidate(*p);
        }
        prefixes
    }

    /// Drops `peer`'s candidate for one prefix, maintaining both indexes.
    /// Returns true when a candidate actually existed.
    fn remove_candidate(&mut self, peer: Ipv4Addr, prefix: Ipv4Prefix) -> bool {
        let removed = match self.candidates.get_mut(&prefix) {
            Some(set) => {
                let removed = set.remove(&(true, peer)).is_some();
                if set.is_empty() {
                    self.candidates.remove(&prefix);
                }
                removed
            }
            None => false,
        };
        if removed {
            if let Some(set) = self.adj_in.get_mut(&peer) {
                set.remove(&prefix);
                if set.is_empty() {
                    self.adj_in.remove(&peer);
                }
            }
            self.invalidate(prefix);
        }
        removed
    }

    fn invalidate(&mut self, prefix: Ipv4Prefix) {
        if self.cache.get_mut().remove(&prefix).is_some() {
            self.stats.get_mut().invalidations += 1;
        }
    }

    /// Number of paths in a peer's Adj-RIB-In.
    pub fn adj_in_len(&self, peer: Ipv4Addr) -> usize {
        self.adj_in.get(&peer).map_or(0, |t| t.len())
    }

    /// Every prefix with at least one candidate path — a read of the
    /// persistent candidate index, not a union rebuild.
    pub fn prefixes(&self) -> BTreeSet<Ipv4Prefix> {
        self.candidates.keys().copied().collect()
    }

    /// Number of live prefixes.
    pub fn prefix_count(&self) -> usize {
        self.candidates.len()
    }

    /// The attribute store (shared-allocation reads for UPDATE
    /// construction).
    pub fn attr_store(&self) -> &AttrStore {
        &self.store
    }

    /// Interns an owned attribute set in this RIB's store (the speaker's
    /// export path uses this so Adj-RIB-Out entries are ids too).
    pub fn intern_attrs(&mut self, attrs: PathAttributes) -> AttrId {
        self.store.intern_owned(attrs)
    }

    /// The canonical shared attributes for an id.
    pub fn attrs_of(&self, id: AttrId) -> &Arc<PathAttributes> {
        self.store.attrs(id)
    }

    /// Just the decision-process counters `(decide_calls,
    /// decide_cache_hits)` — the subset trace instrumentation diffs around
    /// every `reconcile`. Much cheaper than [`LocRib::stats`], which also
    /// assembles the attribute-store figures.
    pub fn decide_counters(&self) -> (u64, u64) {
        let s = self.stats.borrow();
        (s.decide_calls, s.decide_cache_hits)
    }

    /// Snapshot of the work counters (attr-store figures filled in here).
    pub fn stats(&self) -> RibStats {
        let mut s = *self.stats.borrow();
        s.attr_interns = self.store.interns;
        s.attr_reuses = self.store.reuses;
        s.attr_store_size = self.store.len() as u64;
        s
    }

    /// Runs the decision process for `prefix`, memoized until a mutation
    /// touches the prefix.
    pub fn decide(&self, prefix: Ipv4Prefix) -> Option<Arc<Decision>> {
        {
            let mut stats = self.stats.borrow_mut();
            stats.decide_calls += 1;
            if let Some(hit) = self.cache.borrow().get(&prefix) {
                stats.decide_cache_hits += 1;
                return hit.clone();
            }
            stats.decide_recomputes += 1;
        }
        let decision = self.compute(prefix);
        self.cache.borrow_mut().insert(prefix, decision.clone());
        decision
    }

    /// The uncached decision process: rank the prefix's candidate set.
    fn compute(&self, prefix: Ipv4Prefix) -> Option<Arc<Decision>> {
        let cands = self.candidates.get(&prefix)?;
        debug_assert!(!cands.is_empty(), "empty candidate sets are removed");
        self.stats.borrow_mut().candidate_touches += cands.len() as u64;
        // Iteration order is (local, peer-address) — the naive gathering
        // order — and `min_by` keeps the earliest of rank-equal candidates,
        // so step 7 (lowest peer address) falls out for free.
        let best = cands
            .iter()
            .min_by(|a, b| self.rank((a.0, a.1), (b.0, b.1)))
            .expect("non-empty");
        let members: Vec<(&CandKey, &Cand)> = if self.multipath {
            cands
                .iter()
                .filter(|c| self.rank((c.0, c.1), (best.0, best.1)) == std::cmp::Ordering::Equal)
                .collect()
        } else {
            vec![best]
        };
        let route = |(key, cand): (&CandKey, &Cand)| RouteInfo {
            attrs: Arc::clone(self.store.attrs(cand.attr)),
            attr_id: cand.attr,
            peer: key.1,
            ebgp: cand.ebgp,
        };
        let mut next_hops: Vec<Ipv4Addr> = members
            .iter()
            .map(|(_, c)| self.store.attrs(c.attr).next_hop)
            .collect();
        next_hops.sort();
        next_hops.dedup();
        Some(Arc::new(Decision {
            best: route((best.0, best.1)),
            multipath: members.into_iter().map(route).collect(),
            next_hops,
        }))
    }

    /// Total ordering used by the decision process; `Less` is better. Steps
    /// 1–6 define multipath equality; step 7 (peer address) only breaks the
    /// final tie for the single best path and is excluded from `rank` — the
    /// caller treats `Equal` as "same up to multipath" and `min_by` keeps
    /// the earliest candidate (index order is local, then peer address).
    fn rank(&self, a: (&CandKey, &Cand), b: (&CandKey, &Cand)) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let (ak, ac) = a;
        let (bk, bc) = b;
        let am = self.store.meta(ac.attr);
        let bm = self.store.meta(bc.attr);
        // 1. Higher local-pref wins.
        let o = bm.local_pref.cmp(&am.local_pref);
        if o != Ordering::Equal {
            return o;
        }
        // 2. Local origination wins (`!key.0` is "is local").
        let o = ak.0.cmp(&bk.0);
        if o != Ordering::Equal {
            return o;
        }
        // 3. Shorter AS path wins.
        let o = am.path_len.cmp(&bm.path_len);
        if o != Ordering::Equal {
            return o;
        }
        // 4. Lower origin wins.
        let o = am.origin_rank.cmp(&bm.origin_rank);
        if o != Ordering::Equal {
            return o;
        }
        // 5. Lower MED wins, only between the same neighbor AS.
        if am.neighbor_as.is_some() && am.neighbor_as == bm.neighbor_as {
            let o = am.med.cmp(&bm.med);
            if o != Ordering::Equal {
                return o;
            }
        }
        // 6. eBGP beats iBGP.
        bc.ebgp.cmp(&ac.ebgp)
    }

    /// The effective next-hop set for a prefix after the decision process:
    /// the deduplicated next hops of the multipath set. Empty when the
    /// prefix is unreachable; `None` inner addresses never appear. Locally
    /// originated prefixes return their own next hop.
    pub fn next_hops(&self, prefix: Ipv4Prefix) -> Vec<Ipv4Addr> {
        self.decide(prefix)
            .map(|d| d.next_hops.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::AsPathSegment;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn attrs(path: &[u16], next_hop: [u8; 4]) -> PathAttributes {
        PathAttributes {
            origin: Origin::Igp,
            as_path: vec![AsPathSegment::Sequence(path.to_vec())],
            next_hop: Ipv4Addr::from(next_hop),
            med: None,
            local_pref: None,
            unknown: vec![],
        }
    }

    fn announce(rib: &mut LocRib, peer: [u8; 4], path: &[u16], prefix: &str) {
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(attrs(path, peer))),
            nlri: vec![pfx(prefix)],
        };
        rib.update_from_peer(Ipv4Addr::from(peer), true, &u);
    }

    #[test]
    fn shortest_as_path_wins() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2, 3], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[4, 5], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn equal_length_paths_form_multipath() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[3, 4], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 3], &[5, 6, 7], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.multipath.len(), 2, "two 2-hop paths tie");
        let hops = rib.next_hops(pfx("10.9.0.0/16"));
        assert_eq!(
            hops,
            vec![Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)]
        );
    }

    #[test]
    fn multipath_disabled_gives_singleton() {
        let mut rib = LocRib::new(65000, false);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[3, 4], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.multipath.len(), 1);
        assert_eq!(rib.next_hops(pfx("10.9.0.0/16")).len(), 1);
    }

    #[test]
    fn local_pref_dominates_path_length() {
        let mut rib = LocRib::new(65000, true);
        let mut long = attrs(&[1, 2, 3, 4], [10, 0, 0, 1]);
        long.local_pref = Some(200);
        rib.update_from_peer(
            Ipv4Addr::new(10, 0, 0, 1),
            true,
            &UpdateMsg {
                withdrawn: vec![],
                attrs: Some(Arc::new(long)),
                nlri: vec![pfx("10.9.0.0/16")],
            },
        );
        announce(&mut rib, [10, 0, 0, 2], &[9], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn local_origination_beats_learned() {
        let mut rib = LocRib::new(65000, true);
        rib.originate(pfx("10.9.0.0/16"), Ipv4Addr::new(10, 0, 0, 99));
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert!(d.best.is_local());
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn origin_rank_breaks_ties() {
        let mut rib = LocRib::new(65000, true);
        let mut egp = attrs(&[1], [10, 0, 0, 1]);
        egp.origin = Origin::Egp;
        rib.update_from_peer(
            Ipv4Addr::new(10, 0, 0, 1),
            true,
            &UpdateMsg {
                withdrawn: vec![],
                attrs: Some(Arc::new(egp)),
                nlri: vec![pfx("10.9.0.0/16")],
            },
        );
        announce(&mut rib, [10, 0, 0, 2], &[2], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 2), "IGP beats EGP");
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn med_compared_within_same_neighbor_as() {
        let mut rib = LocRib::new(65000, true);
        let mut m10 = attrs(&[7], [10, 0, 0, 1]);
        m10.med = Some(10);
        let mut m5 = attrs(&[7], [10, 0, 0, 2]);
        m5.med = Some(5);
        for (peer, a) in [([10, 0, 0, 1], m10), ([10, 0, 0, 2], m5)] {
            rib.update_from_peer(
                Ipv4Addr::from(peer),
                true,
                &UpdateMsg {
                    withdrawn: vec![],
                    attrs: Some(Arc::new(a)),
                    nlri: vec![pfx("10.9.0.0/16")],
                },
            );
        }
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 2), "lower MED");
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn med_ignored_across_different_neighbor_as() {
        let mut rib = LocRib::new(65000, true);
        let mut m10 = attrs(&[7], [10, 0, 0, 1]);
        m10.med = Some(10);
        let mut m5 = attrs(&[8], [10, 0, 0, 2]);
        m5.med = Some(5);
        for (peer, a) in [([10, 0, 0, 1], m10), ([10, 0, 0, 2], m5)] {
            rib.update_from_peer(
                Ipv4Addr::from(peer),
                true,
                &UpdateMsg {
                    withdrawn: vec![],
                    attrs: Some(Arc::new(a)),
                    nlri: vec![pfx("10.9.0.0/16")],
                },
            );
        }
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.multipath.len(), 2, "MED not comparable → still tie");
    }

    #[test]
    fn loop_prevention_rejects_own_as() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 65000, 2], "10.9.0.0/16");
        assert!(rib.decide(pfx("10.9.0.0/16")).is_none());
    }

    #[test]
    fn looped_announcement_withdraws_previous() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        assert!(rib.decide(pfx("10.9.0.0/16")).is_some());
        let affected = {
            let u = UpdateMsg {
                withdrawn: vec![],
                attrs: Some(Arc::new(attrs(&[1, 65000], [10, 0, 0, 1]))),
                nlri: vec![pfx("10.9.0.0/16")],
            };
            rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u)
        };
        assert!(affected.contains(&pfx("10.9.0.0/16")));
        assert!(rib.decide(pfx("10.9.0.0/16")).is_none());
    }

    #[test]
    fn withdraw_removes_path() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let u = UpdateMsg {
            withdrawn: vec![pfx("10.9.0.0/16")],
            attrs: None,
            nlri: vec![],
        };
        let affected = rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u);
        assert_eq!(affected.len(), 1);
        assert!(rib.decide(pfx("10.9.0.0/16")).is_none());
        assert!(rib.next_hops(pfx("10.9.0.0/16")).is_empty());
    }

    #[test]
    fn redundant_update_reports_no_change() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(attrs(&[1], [10, 0, 0, 1]))),
            nlri: vec![pfx("10.9.0.0/16")],
        };
        let affected = rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u);
        assert!(affected.is_empty(), "identical re-announcement is a no-op");
    }

    #[test]
    fn drop_peer_flushes_its_routes() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.1.0.0/16");
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.2.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[2], "10.1.0.0/16");
        let affected = rib.drop_peer(Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(affected.len(), 2);
        // 10.1/16 still reachable via the other peer.
        assert_eq!(rib.next_hops(pfx("10.1.0.0/16")).len(), 1);
        assert!(rib.next_hops(pfx("10.2.0.0/16")).is_empty());
    }

    #[test]
    fn prefixes_lists_union() {
        let mut rib = LocRib::new(65000, true);
        rib.originate(pfx("10.0.0.0/24"), Ipv4Addr::new(10, 0, 0, 1));
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.1.0.0/16");
        let ps = rib.prefixes();
        assert!(ps.contains(&pfx("10.0.0.0/24")));
        assert!(ps.contains(&pfx("10.1.0.0/16")));
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn identical_attr_sets_share_one_interned_entry() {
        let mut rib = LocRib::new(65000, true);
        // Same attrs announced for many prefixes by one peer, and the same
        // logical attrs (fresh allocation) by another.
        let shared = Arc::new(attrs(&[1, 2], [10, 0, 0, 1]));
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::clone(&shared)),
            nlri: vec![pfx("10.1.0.0/16"), pfx("10.2.0.0/16"), pfx("10.3.0.0/16")],
        };
        rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u);
        let u2 = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(attrs(&[1, 2], [10, 0, 0, 1]))),
            nlri: vec![pfx("10.4.0.0/16")],
        };
        rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 2), true, &u2);
        let s = rib.stats();
        assert_eq!(s.attr_store_size, 1, "one distinct attribute set");
        assert_eq!(s.attr_interns, 1);
        assert_eq!(s.attr_reuses, 1, "second UPDATE reused the entry");
        let d1 = rib.decide(pfx("10.1.0.0/16")).unwrap();
        let d4 = rib.decide(pfx("10.4.0.0/16")).unwrap();
        assert!(
            Arc::ptr_eq(&d1.best.attrs, &d4.best.attrs),
            "decisions share the canonical allocation"
        );
        assert_eq!(d1.best.attr_id, d4.best.attr_id);
    }

    #[test]
    fn decide_is_memoized_until_invalidated() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[3, 4], "10.9.0.0/16");
        let p = pfx("10.9.0.0/16");
        let d1 = rib.decide(p).unwrap();
        let d2 = rib.decide(p).unwrap();
        assert!(Arc::ptr_eq(&d1, &d2), "second read hits the cache");
        let s = rib.stats();
        assert_eq!(s.decide_calls, 2);
        assert_eq!(s.decide_recomputes, 1);
        assert_eq!(s.decide_cache_hits, 1);
        assert_eq!(s.candidate_touches, 2, "one recompute over two candidates");
        // A mutation touching the prefix invalidates the memo.
        announce(&mut rib, [10, 0, 0, 3], &[9], "10.9.0.0/16");
        let d3 = rib.decide(p).unwrap();
        assert!(!Arc::ptr_eq(&d1, &d3));
        let s = rib.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.decide_recomputes, 2);
        // Unreachable prefixes are memoized too.
        let other = pfx("10.250.0.0/16");
        assert!(rib.decide(other).is_none());
        assert!(rib.decide(other).is_none());
        assert_eq!(rib.stats().decide_cache_hits, 2);
    }

    #[test]
    fn redundant_update_keeps_memo() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let p = pfx("10.9.0.0/16");
        let d1 = rib.decide(p).unwrap();
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let d2 = rib.decide(p).unwrap();
        assert!(
            Arc::ptr_eq(&d1, &d2),
            "identical re-announcement must not invalidate"
        );
        assert_eq!(rib.stats().invalidations, 0);
    }
}

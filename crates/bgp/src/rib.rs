//! Routing Information Bases and the decision process.
//!
//! One [`LocRib`] per speaker holds the per-peer Adj-RIB-In plus locally
//! originated routes, and answers "what is the best path (and the ECMP
//! multipath set) for this prefix?" following the RFC 4271 §9.1 ranking:
//!
//! 1. highest LOCAL_PREF (default 100),
//! 2. locally originated beats learned,
//! 3. shortest AS_PATH,
//! 4. lowest ORIGIN (IGP < EGP < INCOMPLETE),
//! 5. lowest MED (compared only between routes from the same neighbor AS),
//! 6. eBGP beats iBGP,
//! 7. lowest peer address (router-id proxy) as the final tie-break.
//!
//! With multipath enabled, every candidate equal to the best through step 6
//! joins the multipath set — the relaxation real routers call
//! `maximum-paths`, which the demo's "BGP + ECMP" traffic engineering
//! requires on the fat-tree.

use crate::msg::{Origin, PathAttributes, UpdateMsg};
use horse_net::addr::Ipv4Prefix;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// A candidate path for a prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePath {
    /// Path attributes as received (or as originated).
    pub attrs: PathAttributes,
    /// The peer this was learned from (`0.0.0.0` for local origination).
    pub peer: Ipv4Addr,
    /// True when learned over eBGP.
    pub ebgp: bool,
}

impl RoutePath {
    /// A locally originated path.
    pub fn local(next_hop: Ipv4Addr) -> RoutePath {
        RoutePath {
            attrs: PathAttributes::originated(next_hop),
            peer: Ipv4Addr::UNSPECIFIED,
            ebgp: false,
        }
    }

    /// True for locally originated paths.
    pub fn is_local(&self) -> bool {
        self.peer == Ipv4Addr::UNSPECIFIED
    }

    fn local_pref(&self) -> u32 {
        self.attrs.local_pref.unwrap_or(100)
    }

    fn origin_rank(&self) -> u8 {
        match self.attrs.origin {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }
}

/// Result of running the decision process for one prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision<'a> {
    /// The single best path.
    pub best: &'a RoutePath,
    /// The ECMP set (always contains `best`; singleton when multipath is
    /// off or nothing ties).
    pub multipath: Vec<&'a RoutePath>,
}

/// The speaker's RIB collection.
#[derive(Debug, Clone, Default)]
pub struct LocRib {
    local_as: u16,
    multipath: bool,
    adj_in: BTreeMap<Ipv4Addr, BTreeMap<Ipv4Prefix, RoutePath>>,
    local: BTreeMap<Ipv4Prefix, RoutePath>,
}

impl LocRib {
    /// A RIB for a speaker in `local_as`.
    pub fn new(local_as: u16, multipath: bool) -> LocRib {
        LocRib {
            local_as,
            multipath,
            adj_in: BTreeMap::new(),
            local: BTreeMap::new(),
        }
    }

    /// Originates a local network.
    pub fn originate(&mut self, prefix: Ipv4Prefix, next_hop: Ipv4Addr) {
        self.local.insert(prefix, RoutePath::local(next_hop));
    }

    /// Withdraws a locally originated network.
    pub fn withdraw_local(&mut self, prefix: Ipv4Prefix) -> bool {
        self.local.remove(&prefix).is_some()
    }

    /// Applies an UPDATE from `peer`, returning every prefix whose candidate
    /// set changed. Announcements whose AS_PATH contains our own AS are
    /// rejected (loop prevention) — treated as withdrawals of any previous
    /// path from that peer.
    pub fn update_from_peer(
        &mut self,
        peer: Ipv4Addr,
        ebgp: bool,
        update: &UpdateMsg,
    ) -> BTreeSet<Ipv4Prefix> {
        let mut affected = BTreeSet::new();
        let table = self.adj_in.entry(peer).or_default();
        for p in &update.withdrawn {
            if table.remove(p).is_some() {
                affected.insert(*p);
            }
        }
        if let Some(attrs) = &update.attrs {
            let looped = attrs.contains_asn(self.local_as);
            for p in &update.nlri {
                if looped {
                    if table.remove(p).is_some() {
                        affected.insert(*p);
                    }
                    continue;
                }
                let path = RoutePath {
                    attrs: attrs.clone(),
                    peer,
                    ebgp,
                };
                let prev = table.insert(*p, path.clone());
                if prev.as_ref() != Some(&path) {
                    affected.insert(*p);
                }
            }
        }
        affected
    }

    /// Removes every route learned from `peer` (session down), returning the
    /// affected prefixes.
    pub fn drop_peer(&mut self, peer: Ipv4Addr) -> BTreeSet<Ipv4Prefix> {
        self.adj_in
            .remove(&peer)
            .map(|t| t.into_keys().collect())
            .unwrap_or_default()
    }

    /// Number of paths in a peer's Adj-RIB-In.
    pub fn adj_in_len(&self, peer: Ipv4Addr) -> usize {
        self.adj_in.get(&peer).map_or(0, |t| t.len())
    }

    /// Every prefix with at least one candidate path.
    pub fn prefixes(&self) -> BTreeSet<Ipv4Prefix> {
        let mut out: BTreeSet<Ipv4Prefix> = self.local.keys().copied().collect();
        for t in self.adj_in.values() {
            out.extend(t.keys().copied());
        }
        out
    }

    /// Runs the decision process for `prefix`.
    pub fn decide(&self, prefix: Ipv4Prefix) -> Option<Decision<'_>> {
        let mut candidates: Vec<&RoutePath> = Vec::new();
        if let Some(l) = self.local.get(&prefix) {
            candidates.push(l);
        }
        for t in self.adj_in.values() {
            if let Some(p) = t.get(&prefix) {
                candidates.push(p);
            }
        }
        if candidates.is_empty() {
            return None;
        }
        let best = candidates
            .iter()
            .copied()
            .min_by(|a, b| Self::rank(a, b))
            .expect("non-empty");
        let multipath = if self.multipath {
            candidates
                .into_iter()
                .filter(|c| Self::rank(c, best) == std::cmp::Ordering::Equal)
                .collect()
        } else {
            vec![best]
        };
        Some(Decision { best, multipath })
    }

    /// Total ordering used by the decision process; `Less` is better. Steps
    /// 1–6 define multipath equality; step 7 (peer address) only breaks the
    /// final tie for the single best path and is excluded from `rank` — the
    /// caller treats `Equal` as "same up to multipath" and `min_by` keeps
    /// the earliest candidate, whose ordering is deterministic because
    /// candidates are gathered in (local, peer-address) order.
    fn rank(a: &RoutePath, b: &RoutePath) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        // 1. Higher local-pref wins.
        let o = b.local_pref().cmp(&a.local_pref());
        if o != Ordering::Equal {
            return o;
        }
        // 2. Local origination wins.
        let o = b.is_local().cmp(&a.is_local());
        if o != Ordering::Equal {
            return o;
        }
        // 3. Shorter AS path wins.
        let o = a.attrs.as_path_len().cmp(&b.attrs.as_path_len());
        if o != Ordering::Equal {
            return o;
        }
        // 4. Lower origin wins.
        let o = a.origin_rank().cmp(&b.origin_rank());
        if o != Ordering::Equal {
            return o;
        }
        // 5. Lower MED wins, only between the same neighbor AS.
        if a.attrs.neighbor_as().is_some() && a.attrs.neighbor_as() == b.attrs.neighbor_as() {
            let o = a.attrs.med.unwrap_or(0).cmp(&b.attrs.med.unwrap_or(0));
            if o != Ordering::Equal {
                return o;
            }
        }
        // 6. eBGP beats iBGP.
        b.ebgp.cmp(&a.ebgp)
    }

    /// The effective next-hop set for a prefix after the decision process:
    /// the deduplicated next hops of the multipath set. Empty when the
    /// prefix is unreachable; `None` inner addresses never appear. Locally
    /// originated prefixes return their own next hop.
    pub fn next_hops(&self, prefix: Ipv4Prefix) -> Vec<Ipv4Addr> {
        match self.decide(prefix) {
            None => Vec::new(),
            Some(d) => {
                let mut hops: Vec<Ipv4Addr> =
                    d.multipath.iter().map(|p| p.attrs.next_hop).collect();
                hops.sort();
                hops.dedup();
                hops
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::AsPathSegment;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn attrs(path: &[u16], next_hop: [u8; 4]) -> PathAttributes {
        PathAttributes {
            origin: Origin::Igp,
            as_path: vec![AsPathSegment::Sequence(path.to_vec())],
            next_hop: Ipv4Addr::from(next_hop),
            med: None,
            local_pref: None,
            unknown: vec![],
        }
    }

    fn announce(rib: &mut LocRib, peer: [u8; 4], path: &[u16], prefix: &str) {
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs(path, peer)),
            nlri: vec![pfx(prefix)],
        };
        rib.update_from_peer(Ipv4Addr::from(peer), true, &u);
    }

    #[test]
    fn shortest_as_path_wins() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2, 3], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[4, 5], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn equal_length_paths_form_multipath() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[3, 4], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 3], &[5, 6, 7], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.multipath.len(), 2, "two 2-hop paths tie");
        let hops = rib.next_hops(pfx("10.9.0.0/16"));
        assert_eq!(
            hops,
            vec![Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)]
        );
    }

    #[test]
    fn multipath_disabled_gives_singleton() {
        let mut rib = LocRib::new(65000, false);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[3, 4], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.multipath.len(), 1);
        assert_eq!(rib.next_hops(pfx("10.9.0.0/16")).len(), 1);
    }

    #[test]
    fn local_pref_dominates_path_length() {
        let mut rib = LocRib::new(65000, true);
        let mut long = attrs(&[1, 2, 3, 4], [10, 0, 0, 1]);
        long.local_pref = Some(200);
        rib.update_from_peer(
            Ipv4Addr::new(10, 0, 0, 1),
            true,
            &UpdateMsg {
                withdrawn: vec![],
                attrs: Some(long),
                nlri: vec![pfx("10.9.0.0/16")],
            },
        );
        announce(&mut rib, [10, 0, 0, 2], &[9], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn local_origination_beats_learned() {
        let mut rib = LocRib::new(65000, true);
        rib.originate(pfx("10.9.0.0/16"), Ipv4Addr::new(10, 0, 0, 99));
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert!(d.best.is_local());
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn origin_rank_breaks_ties() {
        let mut rib = LocRib::new(65000, true);
        let mut egp = attrs(&[1], [10, 0, 0, 1]);
        egp.origin = Origin::Egp;
        rib.update_from_peer(
            Ipv4Addr::new(10, 0, 0, 1),
            true,
            &UpdateMsg {
                withdrawn: vec![],
                attrs: Some(egp),
                nlri: vec![pfx("10.9.0.0/16")],
            },
        );
        announce(&mut rib, [10, 0, 0, 2], &[2], "10.9.0.0/16");
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 2), "IGP beats EGP");
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn med_compared_within_same_neighbor_as() {
        let mut rib = LocRib::new(65000, true);
        let mut m10 = attrs(&[7], [10, 0, 0, 1]);
        m10.med = Some(10);
        let mut m5 = attrs(&[7], [10, 0, 0, 2]);
        m5.med = Some(5);
        for (peer, a) in [([10, 0, 0, 1], m10), ([10, 0, 0, 2], m5)] {
            rib.update_from_peer(
                Ipv4Addr::from(peer),
                true,
                &UpdateMsg {
                    withdrawn: vec![],
                    attrs: Some(a),
                    nlri: vec![pfx("10.9.0.0/16")],
                },
            );
        }
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.best.peer, Ipv4Addr::new(10, 0, 0, 2), "lower MED");
        assert_eq!(d.multipath.len(), 1);
    }

    #[test]
    fn med_ignored_across_different_neighbor_as() {
        let mut rib = LocRib::new(65000, true);
        let mut m10 = attrs(&[7], [10, 0, 0, 1]);
        m10.med = Some(10);
        let mut m5 = attrs(&[8], [10, 0, 0, 2]);
        m5.med = Some(5);
        for (peer, a) in [([10, 0, 0, 1], m10), ([10, 0, 0, 2], m5)] {
            rib.update_from_peer(
                Ipv4Addr::from(peer),
                true,
                &UpdateMsg {
                    withdrawn: vec![],
                    attrs: Some(a),
                    nlri: vec![pfx("10.9.0.0/16")],
                },
            );
        }
        let d = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d.multipath.len(), 2, "MED not comparable → still tie");
    }

    #[test]
    fn loop_prevention_rejects_own_as() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 65000, 2], "10.9.0.0/16");
        assert!(rib.decide(pfx("10.9.0.0/16")).is_none());
    }

    #[test]
    fn looped_announcement_withdraws_previous() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        assert!(rib.decide(pfx("10.9.0.0/16")).is_some());
        let affected = {
            let u = UpdateMsg {
                withdrawn: vec![],
                attrs: Some(attrs(&[1, 65000], [10, 0, 0, 1])),
                nlri: vec![pfx("10.9.0.0/16")],
            };
            rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u)
        };
        assert!(affected.contains(&pfx("10.9.0.0/16")));
        assert!(rib.decide(pfx("10.9.0.0/16")).is_none());
    }

    #[test]
    fn withdraw_removes_path() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let u = UpdateMsg {
            withdrawn: vec![pfx("10.9.0.0/16")],
            attrs: None,
            nlri: vec![],
        };
        let affected = rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u);
        assert_eq!(affected.len(), 1);
        assert!(rib.decide(pfx("10.9.0.0/16")).is_none());
        assert!(rib.next_hops(pfx("10.9.0.0/16")).is_empty());
    }

    #[test]
    fn redundant_update_reports_no_change() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.9.0.0/16");
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(attrs(&[1], [10, 0, 0, 1])),
            nlri: vec![pfx("10.9.0.0/16")],
        };
        let affected = rib.update_from_peer(Ipv4Addr::new(10, 0, 0, 1), true, &u);
        assert!(affected.is_empty(), "identical re-announcement is a no-op");
    }

    #[test]
    fn drop_peer_flushes_its_routes() {
        let mut rib = LocRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.1.0.0/16");
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.2.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[2], "10.1.0.0/16");
        let affected = rib.drop_peer(Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(affected.len(), 2);
        // 10.1/16 still reachable via the other peer.
        assert_eq!(rib.next_hops(pfx("10.1.0.0/16")).len(), 1);
        assert!(rib.next_hops(pfx("10.2.0.0/16")).is_empty());
    }

    #[test]
    fn prefixes_lists_union() {
        let mut rib = LocRib::new(65000, true);
        rib.originate(pfx("10.0.0.0/24"), Ipv4Addr::new(10, 0, 0, 1));
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.1.0.0/16");
        let ps = rib.prefixes();
        assert!(ps.contains(&pfx("10.0.0.0/24")));
        assert!(ps.contains(&pfx("10.1.0.0/16")));
        assert_eq!(ps.len(), 2);
    }
}

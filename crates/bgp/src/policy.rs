//! Per-peer routing policy: route-maps and the Gao-Rexford compiler.
//!
//! A [`RouteMap`] is an ordered list of clauses evaluated first-match-wins,
//! the way IOS-style route-maps work: each clause carries match conditions
//! (prefix lists with `ge`/`le` bounds, required communities, an AS-path
//! "regex-lite" pattern) and a set block (local-pref, MED, community
//! add/delete, AS-path prepend). A route that matches a `Permit` clause is
//! accepted with the clause's transformations applied; a route that matches
//! a `Deny` clause — or falls off the end of a non-empty map — is rejected
//! (implicit deny). A peer with **no** route-map attached permits
//! everything unchanged, so policy-free configurations behave exactly as
//! before this module existed.
//!
//! Evaluation happens at exactly two choke points (see DESIGN.md):
//! import inside [`crate::rib::LocRib::update_from_peer_policed`] before
//! attributes are interned, and export inside the speaker's
//! `export_route`, keyed into the export cache with a policy epoch.
//! Policy-modified attribute sets intern through the same
//! [`crate::rib::AttrStore`] as unmodified ones.
//!
//! [`PeerRole`] + [`gao_rexford_policy`] compile the classic valley-free
//! business relationships (Gao & Rexford 2001) down to plain route-maps:
//! import tags routes with the role community and sets local-pref
//! customer > peer > provider; export toward peers and providers permits
//! only customer-learned or locally originated routes.

use crate::msg::PathAttributes;
use horse_net::addr::Ipv4Prefix;
use std::sync::Arc;

/// Clause disposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// Accept the route, applying the clause's set block.
    Permit,
    /// Reject the route.
    Deny,
}

/// One prefix-list entry: matches prefixes covered by `prefix` whose mask
/// length lies in `min_len..=max_len` (the `ge`/`le` of IOS prefix lists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixMatch {
    /// Covering prefix.
    pub prefix: Ipv4Prefix,
    /// Minimum mask length accepted (`ge`).
    pub min_len: u8,
    /// Maximum mask length accepted (`le`).
    pub max_len: u8,
}

impl PrefixMatch {
    /// Exact-or-longer match rooted at `prefix` (the common case:
    /// `prefix le 32`).
    pub fn within(prefix: Ipv4Prefix) -> PrefixMatch {
        PrefixMatch {
            prefix,
            min_len: prefix.len(),
            max_len: 32,
        }
    }

    /// Exact match only.
    pub fn exact(prefix: Ipv4Prefix) -> PrefixMatch {
        PrefixMatch {
            prefix,
            min_len: prefix.len(),
            max_len: prefix.len(),
        }
    }

    /// Does `p` fall inside this entry?
    pub fn matches(&self, p: Ipv4Prefix) -> bool {
        if p.len() < self.min_len || p.len() > self.max_len || p.len() < self.prefix.len() {
            return false;
        }
        // `p` must sit inside the covering prefix.
        let shift = 32 - self.prefix.len() as u32;
        if shift == 32 {
            return true; // 0.0.0.0/0 covers everything
        }
        let a = u32::from(self.prefix.network()) >> shift;
        let b = u32::from(p.network()) >> shift;
        a == b
    }
}

/// One token of the AS-path regex-lite language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathTok {
    /// A literal ASN.
    Asn(u16),
    /// `?` — exactly one ASN, any value.
    AnyOne,
    /// `*` — zero or more ASNs, any values.
    AnyMany,
}

/// AS-path matcher over a tiny, total subset of path-regex syntax.
///
/// The pattern is a whitespace-separated token list, optionally anchored:
/// `^` at the front pins the match to the start of the path, `$` at the end
/// pins it to the end. Tokens are ASN literals, `?` (any single ASN) and
/// `*` (any run of ASNs). Unanchored patterns match anywhere in the path —
/// `"64512"` behaves like `_64512_` in IOS regexes. `"^$"` matches only the
/// empty path (locally originated routes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsPathRegex {
    toks: Vec<PathTok>,
    anchored_start: bool,
    anchored_end: bool,
    /// Original pattern text, kept for Debug/labels.
    pattern: String,
}

/// Error parsing an [`AsPathRegex`] pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadPattern(pub String);

impl std::fmt::Display for BadPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad as-path pattern: {}", self.0)
    }
}

impl std::error::Error for BadPattern {}

impl AsPathRegex {
    /// Parses a pattern. See the type docs for syntax.
    pub fn parse(pattern: &str) -> Result<AsPathRegex, BadPattern> {
        let mut text = pattern.trim();
        let anchored_start = text.starts_with('^');
        if anchored_start {
            text = &text[1..];
        }
        let anchored_end = text.ends_with('$');
        if anchored_end {
            text = &text[..text.len() - 1];
        }
        let mut toks = Vec::new();
        for word in text.split_whitespace() {
            toks.push(match word {
                "?" => PathTok::AnyOne,
                "*" => PathTok::AnyMany,
                w => PathTok::Asn(
                    w.parse::<u16>()
                        .map_err(|_| BadPattern(pattern.to_string()))?,
                ),
            });
        }
        Ok(AsPathRegex {
            toks,
            anchored_start,
            anchored_end,
            pattern: pattern.to_string(),
        })
    }

    /// The source pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Does the route's AS path match? The path is flattened to the ASN
    /// sequence (sets contribute their members in order).
    pub fn matches(&self, attrs: &PathAttributes) -> bool {
        let path: Vec<u16> = attrs.as_path_asns().collect();
        // An unanchored pattern is `* toks *`.
        if self.anchored_start {
            if self.anchored_end {
                Self::match_here(&self.toks, &path, true)
            } else {
                Self::match_here(&self.toks, &path, false)
            }
        } else {
            (0..=path.len())
                .any(|start| Self::match_here(&self.toks, &path[start..], self.anchored_end))
        }
    }

    /// Matches `toks` against the front of `path`; `to_end` requires the
    /// whole remainder to be consumed. Small recursive matcher — paths are
    /// short (tens of ASNs) and patterns shorter, so no memoization.
    fn match_here(toks: &[PathTok], path: &[u16], to_end: bool) -> bool {
        match toks.first() {
            None => !to_end || path.is_empty(),
            Some(PathTok::Asn(a)) => {
                path.first() == Some(a) && Self::match_here(&toks[1..], &path[1..], to_end)
            }
            Some(PathTok::AnyOne) => {
                !path.is_empty() && Self::match_here(&toks[1..], &path[1..], to_end)
            }
            Some(PathTok::AnyMany) => {
                (0..=path.len()).any(|skip| Self::match_here(&toks[1..], &path[skip..], to_end))
            }
        }
    }
}

/// Match block of one clause. All present conditions must hold (AND); an
/// empty block matches every route.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteMapMatch {
    /// Prefix-list entries; non-empty means the prefix must match at least
    /// one entry (OR within the list).
    pub prefixes: Vec<PrefixMatch>,
    /// Communities that must all be attached to the route.
    pub communities: Vec<u32>,
    /// AS-path pattern.
    pub as_path: Option<AsPathRegex>,
}

impl RouteMapMatch {
    fn matches(&self, prefix: Ipv4Prefix, attrs: &PathAttributes) -> bool {
        if !self.prefixes.is_empty() && !self.prefixes.iter().any(|m| m.matches(prefix)) {
            return false;
        }
        if !self.communities.iter().all(|c| attrs.has_community(*c)) {
            return false;
        }
        if let Some(re) = &self.as_path {
            if !re.matches(attrs) {
                return false;
            }
        }
        true
    }
}

/// Set block of one `Permit` clause, applied to matching routes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteMapSet {
    /// Overwrite LOCAL_PREF.
    pub local_pref: Option<u32>,
    /// Overwrite MED.
    pub med: Option<u32>,
    /// Communities to attach (kept sorted/deduped on the route).
    pub add_communities: Vec<u32>,
    /// Communities to strip (applied before `add_communities`).
    pub del_communities: Vec<u32>,
    /// Extra copies of `own_as` to prepend to the AS path.
    pub prepend: u8,
}

impl RouteMapSet {
    /// True when the block changes nothing — lets the evaluator skip the
    /// attribute clone entirely.
    pub fn is_noop(&self) -> bool {
        self.local_pref.is_none()
            && self.med.is_none()
            && self.add_communities.is_empty()
            && self.del_communities.is_empty()
            && self.prepend == 0
    }

    /// Applies the block to `attrs`, returning the transformed copy.
    pub fn apply(&self, attrs: &PathAttributes, own_as: u16) -> PathAttributes {
        let mut out = attrs.clone();
        if let Some(lp) = self.local_pref {
            out.local_pref = Some(lp);
        }
        if let Some(med) = self.med {
            out.med = Some(med);
        }
        if !self.del_communities.is_empty() {
            out.communities
                .retain(|c| !self.del_communities.contains(c));
        }
        if !self.add_communities.is_empty() {
            out.communities.extend_from_slice(&self.add_communities);
            out.communities.sort_unstable();
            out.communities.dedup();
        }
        for _ in 0..self.prepend {
            out = out.prepended(own_as);
        }
        out
    }
}

/// One route-map clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteMapClause {
    /// Permit or deny.
    pub action: PolicyAction,
    /// Match conditions (AND of present conditions).
    pub matches: RouteMapMatch,
    /// Transformations applied on permit.
    pub set: RouteMapSet,
}

impl RouteMapClause {
    /// A match-everything permit clause with no transformations.
    pub fn permit_any() -> RouteMapClause {
        RouteMapClause {
            action: PolicyAction::Permit,
            matches: RouteMapMatch::default(),
            set: RouteMapSet::default(),
        }
    }

    /// A match-everything deny clause.
    pub fn deny_any() -> RouteMapClause {
        RouteMapClause {
            action: PolicyAction::Deny,
            matches: RouteMapMatch::default(),
            set: RouteMapSet::default(),
        }
    }
}

/// Result of evaluating a route-map against one route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyVerdict {
    /// Route rejected (matched a deny clause, or no clause matched).
    Deny,
    /// Route accepted; `None` means unchanged (no clone was made).
    Permit(Option<PathAttributes>),
}

/// An ordered route-map: clauses tried in order, first match wins,
/// implicit deny at the end.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteMap {
    /// Clauses in evaluation order.
    pub clauses: Vec<RouteMapClause>,
}

impl RouteMap {
    /// A map from clauses.
    pub fn new(clauses: Vec<RouteMapClause>) -> RouteMap {
        RouteMap { clauses }
    }

    /// A map that permits everything unchanged. Behaviorally identical to
    /// having no policy at all — used by differential tests.
    pub fn permit_all() -> RouteMap {
        RouteMap::new(vec![RouteMapClause::permit_any()])
    }

    /// Index of the first clause matching `(prefix, attrs)`, if any.
    /// Exposed so the import path can bucket NLRI by clause and intern one
    /// transformed attribute set per bucket.
    pub fn first_match(&self, prefix: Ipv4Prefix, attrs: &PathAttributes) -> Option<usize> {
        self.clauses
            .iter()
            .position(|c| c.matches.matches(prefix, attrs))
    }

    /// Full evaluation: first matching clause decides; no match = deny.
    pub fn apply(&self, prefix: Ipv4Prefix, attrs: &PathAttributes, own_as: u16) -> PolicyVerdict {
        match self.first_match(prefix, attrs) {
            None => PolicyVerdict::Deny,
            Some(i) => self.verdict_of(i, attrs, own_as),
        }
    }

    /// Verdict for a clause index previously returned by
    /// [`RouteMap::first_match`].
    pub fn verdict_of(&self, clause: usize, attrs: &PathAttributes, own_as: u16) -> PolicyVerdict {
        let c = &self.clauses[clause];
        match c.action {
            PolicyAction::Deny => PolicyVerdict::Deny,
            PolicyAction::Permit if c.set.is_noop() => PolicyVerdict::Permit(None),
            PolicyAction::Permit => PolicyVerdict::Permit(Some(c.set.apply(attrs, own_as))),
        }
    }

    /// True when any clause matches on prefix — the export cache must key
    /// on the prefix as well as the attribute set for such maps.
    pub fn prefix_sensitive(&self) -> bool {
        self.clauses.iter().any(|c| !c.matches.prefixes.is_empty())
    }
}

/// Import + export route-maps for one peer. `None` = no policy (permit
/// everything unchanged).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeerPolicy {
    /// Applied to routes learned from the peer, before interning.
    pub import: Option<Arc<RouteMap>>,
    /// Applied to routes advertised to the peer, before the standard eBGP
    /// transform.
    pub export: Option<Arc<RouteMap>>,
}

impl PeerPolicy {
    /// True when neither direction has a map attached.
    pub fn is_empty(&self) -> bool {
        self.import.is_none() && self.export.is_none()
    }
}

// ---- Gao-Rexford ----------------------------------------------------------

/// Community tagging a route learned from a customer.
pub const GR_FROM_CUSTOMER: u32 = 0xff10_0001;
/// Community tagging a route learned from a peer.
pub const GR_FROM_PEER: u32 = 0xff10_0002;
/// Community tagging a route learned from a provider.
pub const GR_FROM_PROVIDER: u32 = 0xff10_0003;

/// Local-pref assigned to customer-learned routes.
pub const GR_LP_CUSTOMER: u32 = 200;
/// Local-pref assigned to peer-learned routes.
pub const GR_LP_PEER: u32 = 100;
/// Local-pref assigned to provider-learned routes.
pub const GR_LP_PROVIDER: u32 = 50;

/// The business relationship of a neighbor, from this router's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PeerRole {
    /// The neighbor pays us for transit.
    Customer,
    /// Settlement-free peer.
    Peer,
    /// We pay the neighbor for transit.
    Provider,
}

impl PeerRole {
    fn tag(self) -> u32 {
        match self {
            PeerRole::Customer => GR_FROM_CUSTOMER,
            PeerRole::Peer => GR_FROM_PEER,
            PeerRole::Provider => GR_FROM_PROVIDER,
        }
    }

    fn local_pref(self) -> u32 {
        match self {
            PeerRole::Customer => GR_LP_CUSTOMER,
            PeerRole::Peer => GR_LP_PEER,
            PeerRole::Provider => GR_LP_PROVIDER,
        }
    }
}

/// Compiles the Gao-Rexford rules for a neighbor in `role` down to a
/// [`PeerPolicy`]:
///
/// * **import** — strip any stale role tags, tag with this peer's role,
///   set local-pref so customer routes beat peer routes beat provider
///   routes (prefer-customer).
/// * **export** — toward customers everything goes; toward peers and
///   providers only customer-learned routes (carrying
///   [`GR_FROM_CUSTOMER`]) and locally originated routes (empty AS path at
///   export time) are announced — the valley-free export rule.
pub fn gao_rexford_policy(role: PeerRole) -> PeerPolicy {
    let strip = vec![GR_FROM_CUSTOMER, GR_FROM_PEER, GR_FROM_PROVIDER];
    let import = RouteMap::new(vec![RouteMapClause {
        action: PolicyAction::Permit,
        matches: RouteMapMatch::default(),
        set: RouteMapSet {
            local_pref: Some(role.local_pref()),
            add_communities: vec![role.tag()],
            del_communities: strip,
            ..RouteMapSet::default()
        },
    }]);
    let export = match role {
        // Customers get the full table.
        PeerRole::Customer => RouteMap::permit_all(),
        // Peers and providers get customer routes and our own originations
        // only; everything else falls through to the implicit deny.
        PeerRole::Peer | PeerRole::Provider => RouteMap::new(vec![
            RouteMapClause {
                action: PolicyAction::Permit,
                matches: RouteMapMatch {
                    communities: vec![GR_FROM_CUSTOMER],
                    ..RouteMapMatch::default()
                },
                set: RouteMapSet::default(),
            },
            RouteMapClause {
                action: PolicyAction::Permit,
                matches: RouteMapMatch {
                    as_path: Some(AsPathRegex::parse("^$").expect("static pattern")),
                    ..RouteMapMatch::default()
                },
                set: RouteMapSet::default(),
            },
        ]),
    };
    PeerPolicy {
        import: Some(Arc::new(import)),
        export: Some(Arc::new(export)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{AsPathSegment, Origin};
    use std::net::Ipv4Addr;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn attrs(path: &[u16]) -> PathAttributes {
        PathAttributes {
            origin: Origin::Igp,
            as_path: vec![AsPathSegment::Sequence(path.to_vec())],
            next_hop: Ipv4Addr::new(10, 0, 0, 1),
            med: None,
            local_pref: None,
            communities: vec![],
            unknown: vec![],
        }
    }

    #[test]
    fn prefix_match_within_and_exact() {
        let within = PrefixMatch::within(pfx("10.0.0.0/8"));
        assert!(within.matches(pfx("10.0.0.0/8")));
        assert!(within.matches(pfx("10.1.2.0/24")));
        assert!(!within.matches(pfx("11.0.0.0/8")));
        assert!(!within.matches(pfx("0.0.0.0/0")), "shorter than root");
        let exact = PrefixMatch::exact(pfx("10.1.0.0/16"));
        assert!(exact.matches(pfx("10.1.0.0/16")));
        assert!(!exact.matches(pfx("10.1.2.0/24")));
        // ge/le window
        let win = PrefixMatch {
            prefix: pfx("10.0.0.0/8"),
            min_len: 16,
            max_len: 24,
        };
        assert!(!win.matches(pfx("10.0.0.0/8")));
        assert!(win.matches(pfx("10.3.0.0/16")));
        assert!(win.matches(pfx("10.3.9.0/24")));
        assert!(!win.matches(pfx("10.3.9.128/25")));
        // default route covers everything
        assert!(PrefixMatch::within(pfx("0.0.0.0/0")).matches(pfx("192.168.0.0/16")));
    }

    #[test]
    fn as_path_regex_semantics() {
        let a = attrs(&[64512, 64513, 64514]);
        // Unanchored literal: substring semantics.
        assert!(AsPathRegex::parse("64513").unwrap().matches(&a));
        assert!(!AsPathRegex::parse("64999").unwrap().matches(&a));
        // Anchors.
        assert!(AsPathRegex::parse("^64512").unwrap().matches(&a));
        assert!(!AsPathRegex::parse("^64513").unwrap().matches(&a));
        assert!(AsPathRegex::parse("64514$").unwrap().matches(&a));
        assert!(!AsPathRegex::parse("64512$").unwrap().matches(&a));
        assert!(AsPathRegex::parse("^64512 * 64514$").unwrap().matches(&a));
        assert!(AsPathRegex::parse("^64512 ? 64514$").unwrap().matches(&a));
        assert!(!AsPathRegex::parse("^64512 ? ? 64514$").unwrap().matches(&a));
        // Empty path.
        let local = attrs(&[]);
        assert!(AsPathRegex::parse("^$").unwrap().matches(&local));
        assert!(!AsPathRegex::parse("^$").unwrap().matches(&a));
        // `*` alone matches anything.
        assert!(AsPathRegex::parse("^*$").unwrap().matches(&local));
        assert!(AsPathRegex::parse("^*$").unwrap().matches(&a));
        // Parse errors.
        assert!(AsPathRegex::parse("^not-an-asn$").is_err());
    }

    #[test]
    fn first_match_wins_and_implicit_deny() {
        let map = RouteMap::new(vec![
            RouteMapClause {
                action: PolicyAction::Deny,
                matches: RouteMapMatch {
                    prefixes: vec![PrefixMatch::within(pfx("10.0.0.0/8"))],
                    ..RouteMapMatch::default()
                },
                set: RouteMapSet::default(),
            },
            RouteMapClause {
                action: PolicyAction::Permit,
                matches: RouteMapMatch {
                    prefixes: vec![PrefixMatch::within(pfx("10.0.0.0/8"))],
                    ..RouteMapMatch::default()
                },
                set: RouteMapSet {
                    local_pref: Some(999),
                    ..RouteMapSet::default()
                },
            },
            RouteMapClause {
                action: PolicyAction::Permit,
                matches: RouteMapMatch {
                    prefixes: vec![PrefixMatch::within(pfx("172.16.0.0/12"))],
                    ..RouteMapMatch::default()
                },
                set: RouteMapSet::default(),
            },
        ]);
        let a = attrs(&[64512]);
        // First (deny) clause shadows the later permit for 10/8.
        assert_eq!(map.apply(pfx("10.1.0.0/16"), &a, 1), PolicyVerdict::Deny);
        // Second permit reachable only for prefixes the deny misses: none
        // here, so 172.16 hits clause 3 and passes unchanged.
        assert_eq!(
            map.apply(pfx("172.16.5.0/24"), &a, 1),
            PolicyVerdict::Permit(None)
        );
        // No clause matches 192.168/16: implicit deny.
        assert_eq!(map.apply(pfx("192.168.0.0/16"), &a, 1), PolicyVerdict::Deny);
    }

    #[test]
    fn set_block_transformations() {
        let set = RouteMapSet {
            local_pref: Some(50),
            med: Some(7),
            add_communities: vec![9, 3],
            del_communities: vec![1],
            prepend: 2,
        };
        let mut a = attrs(&[64513]);
        a.communities = vec![1, 3];
        let out = set.apply(&a, 64512);
        assert_eq!(out.local_pref, Some(50));
        assert_eq!(out.med, Some(7));
        assert_eq!(out.communities, vec![3, 9], "del then add, sorted deduped");
        assert_eq!(
            out.as_path,
            vec![AsPathSegment::Sequence(vec![64512, 64512, 64513])]
        );
        // No-op set returns Permit(None) through the map (no clone).
        let map = RouteMap::permit_all();
        assert_eq!(
            map.apply(pfx("10.0.0.0/8"), &a, 64512),
            PolicyVerdict::Permit(None)
        );
    }

    #[test]
    fn community_match_requires_all() {
        let map = RouteMap::new(vec![RouteMapClause {
            action: PolicyAction::Permit,
            matches: RouteMapMatch {
                communities: vec![3, 9],
                ..RouteMapMatch::default()
            },
            set: RouteMapSet::default(),
        }]);
        let mut a = attrs(&[64512]);
        a.communities = vec![3];
        assert_eq!(map.apply(pfx("10.0.0.0/8"), &a, 1), PolicyVerdict::Deny);
        a.communities = vec![3, 9, 11];
        assert_eq!(
            map.apply(pfx("10.0.0.0/8"), &a, 1),
            PolicyVerdict::Permit(None)
        );
    }

    #[test]
    fn gao_rexford_import_tags_and_prefs() {
        for (role, lp, tag) in [
            (PeerRole::Customer, GR_LP_CUSTOMER, GR_FROM_CUSTOMER),
            (PeerRole::Peer, GR_LP_PEER, GR_FROM_PEER),
            (PeerRole::Provider, GR_LP_PROVIDER, GR_FROM_PROVIDER),
        ] {
            let p = gao_rexford_policy(role);
            let import = p.import.unwrap();
            // A route arriving with a stale tag from the previous hop gets
            // retagged with *this* peer's role.
            let mut a = attrs(&[64513]);
            a.communities = vec![GR_FROM_CUSTOMER];
            match import.apply(pfx("10.0.0.0/8"), &a, 64512) {
                PolicyVerdict::Permit(Some(out)) => {
                    assert_eq!(out.local_pref, Some(lp));
                    assert_eq!(out.communities, vec![tag]);
                }
                other => panic!("expected modified permit, got {other:?}"),
            }
        }
    }

    #[test]
    fn gao_rexford_export_is_valley_free() {
        let customer_route = {
            let mut a = attrs(&[64513]);
            a.communities = vec![GR_FROM_CUSTOMER];
            a
        };
        let provider_route = {
            let mut a = attrs(&[64514]);
            a.communities = vec![GR_FROM_PROVIDER];
            a
        };
        let local_route = attrs(&[]);
        let p = pfx("10.0.0.0/8");
        // Toward a customer: everything goes.
        let to_customer = gao_rexford_policy(PeerRole::Customer).export.unwrap();
        assert_ne!(
            to_customer.apply(p, &provider_route, 1),
            PolicyVerdict::Deny
        );
        // Toward a peer or provider: customer + local only.
        for role in [PeerRole::Peer, PeerRole::Provider] {
            let export = gao_rexford_policy(role).export.unwrap();
            assert_ne!(export.apply(p, &customer_route, 1), PolicyVerdict::Deny);
            assert_ne!(export.apply(p, &local_route, 1), PolicyVerdict::Deny);
            assert_eq!(export.apply(p, &provider_route, 1), PolicyVerdict::Deny);
        }
    }

    #[test]
    fn prefix_sensitivity_is_detected() {
        assert!(!RouteMap::permit_all().prefix_sensitive());
        assert!(!gao_rexford_policy(PeerRole::Peer)
            .export
            .unwrap()
            .prefix_sensitive());
        let map = RouteMap::new(vec![RouteMapClause {
            action: PolicyAction::Permit,
            matches: RouteMapMatch {
                prefixes: vec![PrefixMatch::within(pfx("10.0.0.0/8"))],
                ..RouteMapMatch::default()
            },
            set: RouteMapSet::default(),
        }]);
        assert!(map.prefix_sensitive());
    }
}

//! The pre-compact-id RIB shape, preserved verbatim as [`BtreeRib`].
//!
//! PR 4's indexed RIB (inverted candidate index + memoized decisions +
//! hash-consed attributes) keyed everything by the address structs
//! themselves: `BTreeMap<Ipv4Prefix, …>` candidate index, per-peer
//! `BTreeMap<Ipv4Addr, BTreeSet<Ipv4Prefix>>` Adj-RIB-In, and a
//! `BTreeMap<Ipv4Prefix, …>` decision cache. The compact-id refactor
//! (see [`crate::rib`]) rekeys those structures onto interned
//! `PrefixId`/`PeerId` arenas; this module keeps the map-shaped
//! implementation alive, exactly as it was, for two consumers:
//!
//! * `tests/prop_rib_differential.rs` drives it in lockstep with both the
//!   naive model and the interned-id [`crate::rib::LocRib`] — three
//!   implementations, one observable behaviour;
//! * the `table_scale` bench replays a tapped convergence trace through
//!   it to measure the decide-path wall of the pre-refactor shape (the
//!   `HORSE_TABLE_MIN_SPEEDUP` baseline).
//!
//! It shares the [`AttrStore`]/[`AttrId`] layer (hash-consing predates the
//! id refactor) but owns a **private** store — the per-process shared pool
//! is part of the new shape. Semantics are pinned by the differential
//! test: identical decisions, affected-sets and prefix index for every op
//! sequence.

use crate::msg::{PathAttributes, UpdateMsg};
use crate::rib::{AttrId, AttrStore, Decision, RibStats, RouteInfo};
use horse_net::addr::Ipv4Prefix;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One candidate in the per-prefix index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cand {
    attr: AttrId,
    ebgp: bool,
}

/// Candidate key: `(remote, peer address)`. Local origination is
/// `(false, 0.0.0.0)` and sorts first; remote peers follow in ascending
/// address order — exactly the gathering order of the naive decision loop,
/// which the `min_by` tie-break depends on.
type CandKey = (bool, Ipv4Addr);

const LOCAL_KEY: CandKey = (false, Ipv4Addr::UNSPECIFIED);

/// The address-struct-keyed RIB (the pre-refactor `LocRib`).
#[derive(Debug, Clone, Default)]
pub struct BtreeRib {
    local_as: u16,
    multipath: bool,
    store: AttrStore,
    /// Per peer: the prefixes it currently contributes.
    adj_in: BTreeMap<Ipv4Addr, BTreeSet<Ipv4Prefix>>,
    /// The inverted candidate index. Entries with no candidates are
    /// removed, so the key set is exactly the live prefix set.
    candidates: BTreeMap<Ipv4Prefix, BTreeMap<CandKey, Cand>>,
    /// Memoized decisions; an absent entry means "not computed since the
    /// last invalidation".
    cache: RefCell<BTreeMap<Ipv4Prefix, Option<Arc<Decision>>>>,
    stats: RefCell<RibStats>,
}

impl BtreeRib {
    /// A RIB for a speaker in `local_as`.
    pub fn new(local_as: u16, multipath: bool) -> BtreeRib {
        BtreeRib {
            local_as,
            multipath,
            ..BtreeRib::default()
        }
    }

    /// Originates a local network.
    pub fn originate(&mut self, prefix: Ipv4Prefix, next_hop: Ipv4Addr) {
        let attr = self
            .store
            .intern_owned(PathAttributes::originated(next_hop));
        self.candidates
            .entry(prefix)
            .or_default()
            .insert(LOCAL_KEY, Cand { attr, ebgp: false });
        self.invalidate(prefix);
    }

    /// Withdraws a locally originated network.
    pub fn withdraw_local(&mut self, prefix: Ipv4Prefix) -> bool {
        let removed = match self.candidates.get_mut(&prefix) {
            Some(set) => {
                let removed = set.remove(&LOCAL_KEY).is_some();
                if set.is_empty() {
                    self.candidates.remove(&prefix);
                }
                removed
            }
            None => false,
        };
        if removed {
            self.invalidate(prefix);
        }
        removed
    }

    /// Applies an UPDATE from `peer`, returning every prefix whose candidate
    /// set changed (loop-prevention included, as in the live RIB).
    pub fn update_from_peer(
        &mut self,
        peer: Ipv4Addr,
        ebgp: bool,
        update: &UpdateMsg,
    ) -> BTreeSet<Ipv4Prefix> {
        let mut affected = BTreeSet::new();
        for p in &update.withdrawn {
            if self.remove_candidate(peer, *p) {
                affected.insert(*p);
            }
        }
        if let Some(attrs) = &update.attrs {
            let looped = attrs.contains_asn(self.local_as);
            let cand = if looped {
                None
            } else {
                Some(Cand {
                    attr: self.store.intern(attrs),
                    ebgp,
                })
            };
            for p in &update.nlri {
                match cand {
                    None => {
                        if self.remove_candidate(peer, *p) {
                            affected.insert(*p);
                        }
                    }
                    Some(cand) => {
                        let prev = self
                            .candidates
                            .entry(*p)
                            .or_default()
                            .insert((true, peer), cand);
                        self.adj_in.entry(peer).or_default().insert(*p);
                        if prev != Some(cand) {
                            affected.insert(*p);
                            self.invalidate(*p);
                        }
                    }
                }
            }
        }
        affected
    }

    /// Removes every route learned from `peer` (session down).
    pub fn drop_peer(&mut self, peer: Ipv4Addr) -> BTreeSet<Ipv4Prefix> {
        let prefixes = self.adj_in.remove(&peer).unwrap_or_default();
        for p in &prefixes {
            if let Some(set) = self.candidates.get_mut(p) {
                set.remove(&(true, peer));
                if set.is_empty() {
                    self.candidates.remove(p);
                }
            }
            self.invalidate(*p);
        }
        prefixes
    }

    fn remove_candidate(&mut self, peer: Ipv4Addr, prefix: Ipv4Prefix) -> bool {
        let removed = match self.candidates.get_mut(&prefix) {
            Some(set) => {
                let removed = set.remove(&(true, peer)).is_some();
                if set.is_empty() {
                    self.candidates.remove(&prefix);
                }
                removed
            }
            None => false,
        };
        if removed {
            if let Some(set) = self.adj_in.get_mut(&peer) {
                set.remove(&prefix);
                if set.is_empty() {
                    self.adj_in.remove(&peer);
                }
            }
            self.invalidate(prefix);
        }
        removed
    }

    fn invalidate(&mut self, prefix: Ipv4Prefix) {
        if self.cache.get_mut().remove(&prefix).is_some() {
            self.stats.get_mut().invalidations += 1;
        }
    }

    /// Interns caller-built attributes (the export path constructs
    /// prepended/next-hop-rewritten sets) — mirrors the pre-refactor
    /// speaker's export interning for the `table_scale` replay.
    pub fn intern_attrs(&mut self, attrs: PathAttributes) -> AttrId {
        self.store.intern_owned(attrs)
    }

    /// Number of paths in a peer's Adj-RIB-In.
    pub fn adj_in_len(&self, peer: Ipv4Addr) -> usize {
        self.adj_in.get(&peer).map_or(0, |t| t.len())
    }

    /// Every prefix with at least one candidate path.
    pub fn prefixes(&self) -> BTreeSet<Ipv4Prefix> {
        self.candidates.keys().copied().collect()
    }

    /// Number of live prefixes.
    pub fn prefix_count(&self) -> usize {
        self.candidates.len()
    }

    /// Snapshot of the work counters (attr-store figures filled in here).
    pub fn stats(&self) -> RibStats {
        let mut s = *self.stats.borrow();
        let (interns, reuses) = self.store.counters();
        s.attr_interns = interns;
        s.attr_reuses = reuses;
        s.attr_store_size = self.store.len() as u64;
        s
    }

    /// Runs the decision process for `prefix`, memoized until a mutation
    /// touches the prefix.
    pub fn decide(&self, prefix: Ipv4Prefix) -> Option<Arc<Decision>> {
        {
            let mut stats = self.stats.borrow_mut();
            stats.decide_calls += 1;
            if let Some(hit) = self.cache.borrow().get(&prefix) {
                stats.decide_cache_hits += 1;
                return hit.clone();
            }
            stats.decide_recomputes += 1;
        }
        let decision = self.compute(prefix);
        self.cache.borrow_mut().insert(prefix, decision.clone());
        decision
    }

    /// The uncached decision process: rank the prefix's candidate set.
    fn compute(&self, prefix: Ipv4Prefix) -> Option<Arc<Decision>> {
        let cands = self.candidates.get(&prefix)?;
        debug_assert!(!cands.is_empty(), "empty candidate sets are removed");
        self.stats.borrow_mut().candidate_touches += cands.len() as u64;
        let best = cands
            .iter()
            .min_by(|a, b| self.rank((a.0, a.1), (b.0, b.1)))
            .expect("non-empty");
        let members: Vec<(&CandKey, &Cand)> = if self.multipath {
            cands
                .iter()
                .filter(|c| self.rank((c.0, c.1), (best.0, best.1)) == std::cmp::Ordering::Equal)
                .collect()
        } else {
            vec![best]
        };
        let route = |(key, cand): (&CandKey, &Cand)| RouteInfo {
            attrs: Arc::clone(self.store.attrs(cand.attr)),
            attr_id: cand.attr,
            peer: key.1,
            ebgp: cand.ebgp,
        };
        let mut next_hops: Vec<Ipv4Addr> = members
            .iter()
            .map(|(_, c)| self.store.attrs(c.attr).next_hop)
            .collect();
        next_hops.sort();
        next_hops.dedup();
        Some(Arc::new(Decision {
            best: route((best.0, best.1)),
            multipath: members.into_iter().map(route).collect(),
            next_hops,
        }))
    }

    /// RFC 4271 steps 1–6; `Less` is better, `Equal` is "same up to
    /// multipath" (step 7 falls out of iteration order + `min_by`).
    fn rank(&self, a: (&CandKey, &Cand), b: (&CandKey, &Cand)) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let (ak, ac) = a;
        let (bk, bc) = b;
        let am = self.store.meta(ac.attr);
        let bm = self.store.meta(bc.attr);
        let o = bm.local_pref.cmp(&am.local_pref);
        if o != Ordering::Equal {
            return o;
        }
        let o = ak.0.cmp(&bk.0);
        if o != Ordering::Equal {
            return o;
        }
        let o = am.path_len.cmp(&bm.path_len);
        if o != Ordering::Equal {
            return o;
        }
        let o = am.origin_rank.cmp(&bm.origin_rank);
        if o != Ordering::Equal {
            return o;
        }
        if am.neighbor_as.is_some() && am.neighbor_as == bm.neighbor_as {
            let o = am.med.cmp(&bm.med);
            if o != Ordering::Equal {
                return o;
            }
        }
        bc.ebgp.cmp(&ac.ebgp)
    }

    /// The effective next-hop set for a prefix after the decision process.
    pub fn next_hops(&self, prefix: Ipv4Prefix) -> Vec<Ipv4Addr> {
        self.decide(prefix)
            .map(|d| d.next_hops.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{AsPathSegment, Origin};

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn attrs(path: &[u16], next_hop: [u8; 4]) -> PathAttributes {
        PathAttributes {
            origin: Origin::Igp,
            as_path: vec![AsPathSegment::Sequence(path.to_vec())],
            next_hop: Ipv4Addr::from(next_hop),
            med: None,
            local_pref: None,
            communities: vec![],
            unknown: vec![],
        }
    }

    fn announce(rib: &mut BtreeRib, peer: [u8; 4], path: &[u16], prefix: &str) {
        let u = UpdateMsg {
            withdrawn: vec![],
            attrs: Some(Arc::new(attrs(path, peer))),
            nlri: vec![pfx(prefix)],
        };
        rib.update_from_peer(Ipv4Addr::from(peer), true, &u);
    }

    #[test]
    fn baseline_ranks_and_memoizes() {
        let mut rib = BtreeRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1, 2, 3], "10.9.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[4, 5], "10.9.0.0/16");
        let d1 = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert_eq!(d1.best.peer, Ipv4Addr::new(10, 0, 0, 2));
        let d2 = rib.decide(pfx("10.9.0.0/16")).unwrap();
        assert!(Arc::ptr_eq(&d1, &d2), "memoized");
        assert_eq!(rib.stats().decide_cache_hits, 1);
    }

    #[test]
    fn baseline_drop_peer_flushes() {
        let mut rib = BtreeRib::new(65000, true);
        announce(&mut rib, [10, 0, 0, 1], &[1], "10.1.0.0/16");
        announce(&mut rib, [10, 0, 0, 2], &[2], "10.1.0.0/16");
        let affected = rib.drop_peer(Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(affected.len(), 1);
        assert_eq!(rib.next_hops(pfx("10.1.0.0/16")).len(), 1);
        assert_eq!(rib.adj_in_len(Ipv4Addr::new(10, 0, 0, 1)), 0);
    }
}
